//! Deterministic parallel execution of [`RunSpec`] lists.
//!
//! Independent runs fan out over `std::thread::scope` workers pulling
//! from a shared atomic counter. Determinism at any thread count follows
//! from three properties:
//!
//! 1. each run is self-contained — its randomness comes from its own
//!    seeded `StreamFactory` streams inside the simulator/synthesizer,
//!    never from shared state;
//! 2. strategies/policies are constructed *inside* the worker from the
//!    spec's registry string, so no cross-thread state exists to race on;
//! 3. results land in a slot indexed by spec position, so output order
//!    is the submission order regardless of completion order.
//!
//! Consequently `execute_with_threads(specs, 1)` and
//! `execute_with_threads(specs, n)` produce byte-identical artifact
//! JSON. The thread count defaults to the machine's parallelism and can
//! be pinned with the `ARQ_THREADS` environment variable (CI uses this
//! to assert the equality above).

use super::registry::{self, RegistryError};
use super::spec::{RunArtifact, RunOutput, RunSpec};
use crate::eval::evaluate_pipelined;
use arq_gnutella::policy::ForwardingPolicy;
use arq_gnutella::sim::Network;
use arq_obs::{Obs, ObsReport};
use arq_overlay::Graph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count: `ARQ_THREADS` if set, else the machine's available
/// parallelism. `ARQ_THREADS=0` is clamped to 1 (a run always needs one
/// worker); anything unparsable is a hard error — a typo like
/// `ARQ_THREADS=fuor` silently falling back to full parallelism would
/// defeat the pinning the variable exists for.
///
/// # Panics
///
/// Panics with a message naming `ARQ_THREADS` when the variable is set
/// to something that is not a non-negative integer.
pub fn thread_count() -> usize {
    match parse_thread_count(std::env::var("ARQ_THREADS").ok().as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Err(msg) => panic!("{msg}"),
    }
}

/// Parses an `ARQ_THREADS` value: `None`/empty means "unset" (use the
/// machine default), `0` clamps to 1, garbage is an error naming the
/// variable. Pure so the rejection paths are testable without racing
/// the process environment.
fn parse_thread_count(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(n) => Ok(Some(n.max(1))),
        Err(_) => Err(format!(
            "ARQ_THREADS: cannot parse `{raw}` as a worker count \
             (expected a non-negative integer; 0 is treated as 1)"
        )),
    }
}

/// Runs every spec, in parallel, returning artifacts in spec order.
///
/// Fails fast (before any run starts) if a spec names an unregistered
/// strategy/policy or has malformed parameters.
pub fn execute(specs: &[RunSpec]) -> Result<Vec<RunArtifact>, RegistryError> {
    execute_with_threads(specs, thread_count())
}

/// [`execute`] with an explicit worker count.
///
/// The budget splits two ways: up to `specs.len()` outer workers pull
/// whole runs, and any surplus (`threads / outer workers`) becomes
/// *intra-run* parallelism — each trace evaluation pipelines block
/// mining over that many threads (see
/// [`evaluate_pipelined`]). A single spec at `threads = 8` therefore
/// runs its own mining pipeline 8 wide, while 8 specs at `threads = 8`
/// run sequentially side by side. Both layers preserve byte-identical
/// artifacts at any thread count.
///
/// Only trace evaluations can spend an intra-run budget — live
/// simulations run their exact (serial) engine regardless. A
/// sim-dominated batch therefore degrades to across-spec parallelism
/// only, instead of reserving surplus workers no run will claim and
/// oversubscribing the machine against the sims. The chosen split is
/// computable up front via [`budget_split`]; bench harnesses record it
/// (as `outer_threads`/`intra_threads` gauges) so reports can attribute
/// wins. It is deliberately *not* written into run artifacts — those
/// are byte-identical at any thread count, and a thread-derived field
/// would break that contract.
pub fn execute_with_threads(
    specs: &[RunSpec],
    threads: usize,
) -> Result<Vec<RunArtifact>, RegistryError> {
    for spec in specs {
        validate(spec)?;
    }
    let (outer, intra) = budget_split(specs, threads);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunArtifact>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..outer {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let artifact = run_one_with_threads(i, &specs[i], intra)
                    .expect("spec was validated before dispatch");
                *slots[i].lock().expect("result slot poisoned") = Some(artifact);
            });
        }
    });
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without filling its slot")
        })
        .collect())
}

/// How [`execute_with_threads`] splits a worker budget over a batch:
/// `(outer, intra)` — across-spec workers, and per-run intra-run
/// parallelism for the runs that can spend it. Batches with no trace
/// evaluation get `intra = 1` (live sims run the exact serial engine),
/// so a sim-dominated sweep parallelizes across specs only instead of
/// oversubscribing `outer × intra` workers.
pub fn budget_split(specs: &[RunSpec], threads: usize) -> (usize, usize) {
    let threads = threads.max(1);
    let outer = threads.clamp(1, specs.len().max(1));
    let has_trace_eval = specs.iter().any(|s| matches!(s, RunSpec::TraceEval { .. }));
    let intra = if has_trace_eval {
        (threads / outer).max(1)
    } else {
        1
    };
    (outer, intra)
}

/// Checks that a spec's strategy/policy string is constructible, along
/// with its obs spec if one is attached.
pub fn validate(spec: &RunSpec) -> Result<(), RegistryError> {
    if let Some(obs) = spec.obs_spec() {
        registry::make_obs_plan(obs)?;
    }
    match spec {
        RunSpec::TraceEval { strategy, .. } => registry::make_strategy(strategy).map(|_| ()),
        RunSpec::LiveSim { policy, .. } => registry::make_policy(policy).map(|_| ()),
    }
}

/// The obs spec injected by the `ARQ_OBS` environment variable, if any.
/// `ARQ_OBS=1` means full default instrumentation; any other non-empty,
/// non-`0` value is taken as an `obs(...)` spec string. Env-injected
/// instrumentation attaches at run time only — it never enters
/// [`RunSpec::describe`], so config digests (and persisted artifacts'
/// provenance) are unchanged by it.
fn env_obs_spec() -> Option<String> {
    match std::env::var("ARQ_OBS") {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) if v == "1" => Some("obs".to_string()),
        Ok(v) => Some(v),
        Err(_) => None,
    }
}

/// Runs one spec to completion on the current thread (no intra-run
/// parallelism).
pub fn run_one(index: usize, spec: &RunSpec) -> Result<RunArtifact, RegistryError> {
    run_one_with_threads(index, spec, 1)
}

/// [`run_one`] with `threads` of intra-run block-mining parallelism for
/// trace evaluations (live simulations are inherently sequential and
/// ignore the budget). Artifacts are byte-identical at any `threads`.
pub fn run_one_with_threads(
    index: usize,
    spec: &RunSpec,
    threads: usize,
) -> Result<RunArtifact, RegistryError> {
    let obs_spec = spec.obs_spec().map(str::to_string).or_else(env_obs_spec);
    let mut obs = match &obs_spec {
        Some(s) => Obs::enabled(registry::make_obs_plan(s)?),
        None => Obs::disabled(),
    };
    let (label, output, obs_report) = match spec {
        RunSpec::TraceEval {
            trace,
            strategy,
            block_size,
            ..
        } => {
            let mut strategy = registry::make_strategy(strategy)?;
            let pairs = trace.materialize();
            let run = evaluate_pipelined(strategy.as_mut(), &pairs, *block_size, threads, &mut obs);
            (run.strategy.clone(), RunOutput::Trace(run), obs.report())
        }
        RunSpec::LiveSim {
            cfg, policy, graph, ..
        } => {
            let (metrics, stats, _, _, report) =
                run_live_with_obs(cfg.clone(), policy, graph.as_deref(), obs)?;
            (
                metrics.policy.clone(),
                RunOutput::Live { metrics, stats },
                report,
            )
        }
    };
    Ok(RunArtifact {
        index,
        label,
        seed: spec.seed(),
        spec: spec.describe(),
        digest: spec.digest(),
        output,
        obs: obs_report,
    })
}

/// Everything one live simulation returns: canonicalized metrics, the
/// policy's stats, the policy itself (for [`ForwardingPolicy::as_any`]
/// downcasts — e.g. reading learned association rules for topology
/// adaptation), and the final overlay.
pub type LiveRun = (
    arq_gnutella::metrics::RunMetrics,
    Vec<(String, f64)>,
    Box<dyn ForwardingPolicy + Send>,
    Graph,
);

/// [`LiveRun`] plus the obs report an instrumented run produced.
pub type LiveRunObs = (
    arq_gnutella::metrics::RunMetrics,
    Vec<(String, f64)>,
    Box<dyn ForwardingPolicy + Send>,
    Graph,
    Option<ObsReport>,
);

/// Builds and runs one live simulation from a policy spec.
pub fn run_live(
    cfg: arq_gnutella::sim::SimConfig,
    policy_spec: &str,
    graph: Option<&Graph>,
) -> Result<LiveRun, RegistryError> {
    let (metrics, stats, policy, graph, _) =
        run_live_with_obs(cfg, policy_spec, graph, Obs::disabled())?;
    Ok((metrics, stats, policy, graph))
}

/// Builds and runs one live simulation on the **windowed sharded
/// engine** (`Network::run_sharded`) with `threads` workers. Results
/// are byte-identical for any `threads >= 1` but follow the windowed
/// engine's documented semantics, not the exact engine's — use this for
/// scale benchmarking and capacity runs, [`run_live`] for anything
/// golden-pinned.
pub fn run_live_sharded(
    mut cfg: arq_gnutella::sim::SimConfig,
    policy_spec: &str,
    threads: usize,
) -> Result<LiveRun, RegistryError> {
    let built = registry::make_policy(policy_spec)?;
    built.apply_to(&mut cfg);
    let label = built.label;
    let network = Network::new(cfg, built.policy);
    let (result, policy, graph) = network.run_sharded_full(threads);
    let mut metrics = result.metrics;
    metrics.policy = label;
    let stats = policy.stats();
    Ok((metrics, stats, policy, graph))
}

/// [`run_live`] with an observability recorder attached to the network.
pub fn run_live_with_obs(
    mut cfg: arq_gnutella::sim::SimConfig,
    policy_spec: &str,
    graph: Option<&Graph>,
    obs: Obs,
) -> Result<LiveRunObs, RegistryError> {
    let built = registry::make_policy(policy_spec)?;
    built.apply_to(&mut cfg);
    let label = built.label;
    let network = match graph {
        Some(g) => Network::with_graph(cfg, built.policy, g.clone()),
        None => Network::new(cfg, built.policy),
    }
    .with_obs(obs);
    let (result, policy, graph) = network.run_full();
    let mut metrics = result.metrics;
    metrics.policy = label;
    let stats = policy.stats();
    Ok((metrics, stats, policy, graph, result.obs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::spec::TraceSource;
    use arq_gnutella::sim::SimConfig;
    use arq_simkern::ToJson;

    fn trace_specs() -> Vec<RunSpec> {
        let trace = TraceSource::PaperDefault {
            pairs: 8_000,
            seed: 5,
        };
        ["static", "sliding", "lazy", "adaptive"]
            .iter()
            .map(|s| RunSpec::TraceEval {
                trace: trace.clone(),
                strategy: s.to_string(),
                block_size: 1_000,
                obs: None,
            })
            .collect()
    }

    #[test]
    fn artifacts_keep_spec_order_at_any_thread_count() {
        let specs = trace_specs();
        let one = execute_with_threads(&specs, 1).unwrap();
        let four = execute_with_threads(&specs, 4).unwrap();
        // More threads than specs: the surplus becomes intra-run
        // block-mining parallelism, which must not move a byte either.
        let sixteen = execute_with_threads(&specs, 16).unwrap();
        let labels: Vec<&str> = one.iter().map(|a| a.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "static(s=10)",
                "sliding(s=10)",
                "lazy(s=10,p=10)",
                "adaptive(s=10)"
            ]
        );
        for ((a, b), c) in one.iter().zip(&four).zip(&sixteen) {
            assert_eq!(a.to_json().to_string(), b.to_json().to_string());
            assert_eq!(a.to_json().to_string(), c.to_json().to_string());
        }
    }

    #[test]
    fn single_spec_pipelines_identically() {
        let spec = &trace_specs()[3]; // adaptive: premine-capable
        let serial = run_one_with_threads(0, spec, 1).unwrap();
        let piped = run_one_with_threads(0, spec, 8).unwrap();
        assert_eq!(serial.to_json().to_string(), piped.to_json().to_string());
    }

    #[test]
    fn thread_count_parsing() {
        // Unset or blank: fall through to the machine default.
        assert_eq!(parse_thread_count(None), Ok(None));
        assert_eq!(parse_thread_count(Some("")), Ok(None));
        assert_eq!(parse_thread_count(Some("   ")), Ok(None));
        // Plain values parse; surrounding whitespace is tolerated.
        assert_eq!(parse_thread_count(Some("4")), Ok(Some(4)));
        assert_eq!(parse_thread_count(Some(" 12 ")), Ok(Some(12)));
        // Zero is clamped to one worker, not silently ignored.
        assert_eq!(parse_thread_count(Some("0")), Ok(Some(1)));
        // Garbage is rejected with a message naming the variable.
        for bad in ["fuor", "-1", "3.5", "1e3", "0x10"] {
            let err = parse_thread_count(Some(bad)).unwrap_err();
            assert!(err.contains("ARQ_THREADS"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
    }

    #[test]
    fn invalid_specs_fail_before_running() {
        let mut specs = trace_specs();
        specs.push(RunSpec::TraceEval {
            trace: TraceSource::PaperDefault {
                pairs: 100,
                seed: 1,
            },
            strategy: "bogus".into(),
            block_size: 10,
            obs: None,
        });
        assert!(matches!(
            execute_with_threads(&specs, 2),
            Err(RegistryError::UnknownStrategy(_))
        ));
    }

    #[test]
    fn intra_budget_is_withheld_from_sim_batches() {
        // A single trace spec with surplus workers spends it intra-run.
        let mut specs = trace_specs();
        specs.truncate(1);
        assert_eq!(budget_split(&specs, 8), (1, 8));
        assert_eq!(budget_split(&specs, 1), (1, 1));
        // A sim-only batch degrades to across-spec parallelism: no run
        // can spend an intra budget, so none is reserved.
        let mut cfg = SimConfig::default_with(50, 60, 3);
        cfg.catalog.topics = 5;
        cfg.catalog.files_per_topic = 40;
        let sim = RunSpec::LiveSim {
            cfg,
            policy: "flood".into(),
            graph: None,
            obs: None,
        };
        let sims: Vec<RunSpec> = vec![sim.clone(), sim.clone(), sim];
        assert_eq!(budget_split(&sims, 8), (3, 1));
        // A mixed batch keeps the trace evals' intra budget.
        let mut mixed = sims.clone();
        mixed.push(trace_specs().remove(0));
        assert_eq!(budget_split(&mixed, 8), (4, 2));
        // Artifacts of obs-enabled runs carry no thread-derived fields:
        // the budget split never enters byte-compared reports.
        if let RunSpec::TraceEval { obs, .. } = &mut specs[0] {
            *obs = Some("obs".to_string());
        }
        let arts = execute_with_threads(&specs, 8).unwrap();
        let report = arts[0].obs.as_ref().expect("obs was requested");
        assert_eq!(report.registry.gauge_value("intra_threads"), None);
    }

    #[test]
    fn sharded_live_runs_match_across_thread_counts() {
        let mut cfg = SimConfig::default_with(60, 120, 17);
        cfg.catalog.topics = 5;
        cfg.catalog.files_per_topic = 40;
        let (m1, s1, _, _) = run_live_sharded(cfg.clone(), "flood", 1).unwrap();
        let (m4, s4, _, _) = run_live_sharded(cfg, "flood", 4).unwrap();
        assert_eq!(format!("{m1:?}"), format!("{m4:?}"));
        assert_eq!(s1, s4);
    }

    #[test]
    fn live_runs_canonicalize_rider_labels() {
        let mut cfg = SimConfig::default_with(50, 100, 11);
        cfg.catalog.topics = 5;
        cfg.catalog.files_per_topic = 40;
        let spec = RunSpec::LiveSim {
            cfg,
            policy: "expanding-ring(start=2,step=3,max=5,wait=1000)".into(),
            graph: None,
            obs: None,
        };
        let artifacts = execute_with_threads(std::slice::from_ref(&spec), 1).unwrap();
        let m = artifacts[0].metrics().unwrap();
        assert_eq!(m.policy, "expanding-ring");
        assert_eq!(artifacts[0].label, "expanding-ring");
        assert_eq!(m.queries, 100);
    }
}
