//! Journaled sweep execution: fan jobs over the deterministic executor,
//! journal each completion durably, assemble the report from the
//! journal.
//!
//! The resumability contract hinges on one decision: the `SweepReport`
//! is *always* assembled by re-reading `journal.jsonl`, never from
//! in-memory results. An uninterrupted sweep and a `kill -9`'d-then-
//! resumed sweep therefore go through the identical code path — parse
//! the journaled rows, order them by job index, emit — and converge to
//! byte-identical `report.json` and `runbook.json`. (The `json` module's
//! exact float round-tripping is what makes parse→re-emit lossless.)
//!
//! The journal itself is an [`arq_simkern::Journal`]: one fsync'd line
//! per completed job, torn tails dropped on read. A job is re-run on
//! resume if and only if its line is absent — there is no third state.

use super::expand::SweepJob;
use super::plan::SweepPlan;
use crate::engine::registry::RegistryError;
use crate::engine::spec::RunArtifact;
use crate::engine::{budget_split, executor, run_one_with_threads};
use arq_simkern::json::{self, Json};
use arq_simkern::rng::fnv1a;
use arq_simkern::{write_atomic_str, Journal, ToJson};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// What can go wrong while running a sweep.
#[derive(Debug)]
pub enum SweepError {
    /// A job's spec failed registry construction.
    Registry(RegistryError),
    /// Filesystem trouble (journal, report, or runbook).
    Io(io::Error),
    /// The journal exists but cannot drive this plan — wrong plan hash,
    /// wrong job count, or rows that no longer match the expansion.
    Journal(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Registry(e) => write!(f, "{e}"),
            SweepError::Io(e) => write!(f, "sweep i/o: {e}"),
            SweepError::Journal(m) => write!(f, "sweep journal: {m}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<RegistryError> for SweepError {
    fn from(e: RegistryError) -> Self {
        SweepError::Registry(e)
    }
}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> Self {
        SweepError::Io(e)
    }
}

/// What [`run_sweep`] leaves behind.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The report document (also written to `report_path`).
    pub report: Json,
    /// The runbook document (also written to `runbook_path`).
    pub runbook: Json,
    /// `<out>/report.json`.
    pub report_path: PathBuf,
    /// `<out>/runbook.json`.
    pub runbook_path: PathBuf,
    /// `<out>/journal.jsonl`.
    pub journal_path: PathBuf,
    /// Total jobs in the plan.
    pub jobs_total: usize,
    /// Jobs executed by this invocation.
    pub jobs_run: usize,
    /// Jobs skipped because the journal already had them.
    pub jobs_skipped: usize,
    /// Sweep-level counters (`sweep_jobs_total/run/skipped`).
    pub registry: arq_obs::Registry,
}

/// FNV-1a digest of an artifact's JSON with the positional `index` field
/// removed — the *content* fingerprint of a run. Two artifacts of the
/// same run reached via different job orderings (a legacy hand-coded
/// experiment vs. a sweep plan) digest equal; any change to the
/// measurements or provenance changes the digest.
pub fn artifact_content_digest(artifact: &RunArtifact) -> u64 {
    let Json::Obj(fields) = artifact.to_json() else {
        unreachable!("RunArtifact serializes as an object");
    };
    let content: Vec<(String, Json)> = fields.into_iter().filter(|(k, _)| k != "index").collect();
    fnv1a(Json::Obj(content).to_string().as_bytes())
}

/// One report row, built from a finished job.
fn report_row(job: &SweepJob, artifact: &RunArtifact) -> Json {
    let params = Json::Obj(
        job.params
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect(),
    );
    let metrics = match (&artifact.eval_run(), &artifact.metrics()) {
        (Some(run), _) => Json::obj([
            ("kind", Json::from("trace-eval")),
            ("avg_coverage", Json::Float(run.avg_coverage)),
            ("avg_success", Json::Float(run.avg_success)),
            ("regenerations", Json::from(run.regenerations)),
            ("trials", Json::from(run.trials)),
        ]),
        (_, Some(m)) => Json::obj([
            ("kind", Json::from("live-sim")),
            ("messages_per_query", Json::Float(m.messages_per_query)),
            ("bytes_per_query", Json::Float(m.bytes_per_query)),
            ("success_rate", Json::Float(m.success_rate)),
            ("answered", Json::from(m.answered)),
            ("queries", Json::from(m.queries)),
            ("retried", Json::from(m.retried)),
            ("expired", Json::from(m.expired)),
            ("lost_messages", Json::from(m.lost_messages)),
            ("buffer_dropped", Json::from(m.buffer_dropped)),
        ]),
        _ => unreachable!("an artifact is either a trace run or a live run"),
    };
    Json::obj([
        ("index", Json::from(job.index)),
        ("params", params),
        ("seed", Json::from(artifact.seed)),
        ("label", Json::from(&artifact.label)),
        ("spec", Json::from(&artifact.spec)),
        (
            "spec_digest",
            Json::from(format!("{:016x}", artifact.digest)),
        ),
        (
            "artifact_digest",
            Json::from(format!("{:016x}", artifact_content_digest(artifact))),
        ),
        ("metrics", metrics),
    ])
}

fn journal_header(plan: &SweepPlan, jobs: usize) -> String {
    Json::obj([
        ("kind", Json::from("arq-sweep-journal")),
        ("plan", Json::from(&plan.name)),
        ("plan_hash", Json::from(format!("{:016x}", plan.hash()))),
        ("jobs", Json::from(jobs)),
    ])
    .to_string()
}

/// Reads the journal at `path` and returns the already-completed rows,
/// indexed by job, after checking the header against this plan and each
/// row's spec digest against this expansion.
fn read_completed(
    path: &Path,
    plan: &SweepPlan,
    jobs: &[SweepJob],
) -> Result<Vec<Option<Json>>, SweepError> {
    let mut completed: Vec<Option<Json>> = vec![None; jobs.len()];
    let lines = Journal::read_lines(path)?;
    let Some((header, rows)) = lines.split_first() else {
        return Ok(completed);
    };
    let bad = |m: String| SweepError::Journal(format!("{}: {m}", path.display()));
    let header = json::parse(header).map_err(|e| bad(format!("unreadable header: {e}")))?;
    if header.get("kind").and_then(Json::as_str) != Some("arq-sweep-journal") {
        return Err(bad("not a sweep journal (missing kind header)".into()));
    }
    let want_hash = format!("{:016x}", plan.hash());
    let got_hash = header.get("plan_hash").and_then(Json::as_str).unwrap_or("");
    if got_hash != want_hash {
        return Err(bad(format!(
            "written by a different plan (journal plan_hash {got_hash}, this plan {want_hash}) \
             — delete the output directory to start over"
        )));
    }
    let got_jobs = header.get("jobs").and_then(Json::as_f64).unwrap_or(-1.0);
    if got_jobs != jobs.len() as f64 {
        return Err(bad(format!(
            "job count mismatch (journal has {got_jobs}, this expansion has {})",
            jobs.len()
        )));
    }
    for (n, line) in rows.iter().enumerate() {
        let record = json::parse(line).map_err(|e| bad(format!("unreadable record {n}: {e}")))?;
        let index = record
            .get("job")
            .and_then(Json::as_f64)
            .filter(|v| v.fract() == 0.0 && *v >= 0.0)
            .map(|v| v as usize)
            .ok_or_else(|| bad(format!("record {n} has no job index")))?;
        if index >= jobs.len() {
            return Err(bad(format!(
                "record {n} claims job #{index} but the plan has {} jobs",
                jobs.len()
            )));
        }
        let digest = record
            .get("spec_digest")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let want = format!("{:016x}", jobs[index].spec.digest());
        if digest != want {
            return Err(bad(format!(
                "job #{index} was journaled for spec digest {digest} but this expansion \
                 has {want} — the plan changed since the journal was written"
            )));
        }
        let row = record
            .get("row")
            .cloned()
            .ok_or_else(|| bad(format!("record {n} has no row payload")))?;
        completed[index] = Some(row);
    }
    Ok(completed)
}

/// Runs (or resumes) a sweep: executes every job not yet journaled,
/// journaling each completion durably, then assembles `report.json` and
/// `runbook.json` from the journal and writes both atomically.
///
/// With `resume = false` any existing journal in `out_dir` is truncated
/// and every job runs. With `resume = true` the journal is read first
/// and exactly the journaled jobs are skipped; a missing journal is an
/// empty one. `spin_ms` sleeps each worker after each job — a test hook
/// (mirroring `arq serve --spin`) that holds the sweep open long enough
/// to `kill -9` it mid-run. `threads` is split over the pending jobs
/// exactly like [`crate::engine::execute_with_threads`] splits it.
pub fn run_sweep(
    plan: &SweepPlan,
    jobs: &[SweepJob],
    out_dir: &Path,
    resume: bool,
    spin_ms: u64,
    threads: usize,
) -> Result<SweepOutcome, SweepError> {
    std::fs::create_dir_all(out_dir)?;
    let journal_path = out_dir.join("journal.jsonl");
    let report_path = out_dir.join("report.json");
    let runbook_path = out_dir.join("runbook.json");

    let completed = if resume && journal_path.exists() {
        read_completed(&journal_path, plan, jobs)?
    } else {
        vec![None; jobs.len()]
    };
    let journal = if resume && journal_path.exists() {
        Journal::open_append(&journal_path)?
    } else {
        let mut j = Journal::create(&journal_path)?;
        j.append(&journal_header(plan, jobs.len()))?;
        j
    };

    let pending: Vec<&SweepJob> = jobs
        .iter()
        .filter(|j| completed[j.index].is_none())
        .collect();
    for job in &pending {
        executor::validate(&job.spec)?;
    }

    let pending_specs: Vec<_> = pending.iter().map(|j| j.spec.clone()).collect();
    let (outer, intra) = budget_split(&pending_specs, threads);
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let journal = Mutex::new(journal);
    let first_error: Mutex<Option<SweepError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..outer {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let slot = next.fetch_add(1, Ordering::Relaxed);
                if slot >= pending.len() {
                    break;
                }
                let job = pending[slot];
                let fail = |e: SweepError| {
                    let mut guard = first_error.lock().expect("error slot poisoned");
                    guard.get_or_insert(e);
                    abort.store(true, Ordering::Relaxed);
                };
                match run_one_with_threads(job.index, &job.spec, intra) {
                    Ok(artifact) => {
                        let record = Json::obj([
                            ("job", Json::from(job.index)),
                            (
                                "spec_digest",
                                Json::from(format!("{:016x}", job.spec.digest())),
                            ),
                            ("row", report_row(job, &artifact)),
                        ])
                        .to_string();
                        let mut guard = journal.lock().expect("journal poisoned");
                        if let Err(e) = guard.append(&record) {
                            fail(SweepError::Io(e));
                        }
                    }
                    Err(e) => fail(SweepError::Registry(e)),
                }
                if spin_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(spin_ms));
                }
            });
        }
    });
    if let Some(e) = first_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }

    // Assemble the outputs from the journal — the single code path that
    // makes resumed and uninterrupted sweeps byte-identical.
    let rows_by_job = read_completed(&journal_path, plan, jobs)?;
    let mut rows = Vec::with_capacity(jobs.len());
    for (index, row) in rows_by_job.into_iter().enumerate() {
        rows.push(row.ok_or_else(|| {
            SweepError::Journal(format!(
                "{}: job #{index} missing after the run",
                journal_path.display()
            ))
        })?);
    }

    let version = env!("CARGO_PKG_VERSION");
    let plan_hash = format!("{:016x}", plan.hash());
    let report = Json::obj([
        ("plan", Json::from(&plan.name)),
        ("plan_hash", Json::from(plan_hash.as_str())),
        ("version", Json::from(version)),
        ("seed", Json::from(plan.seed)),
        ("sampler", Json::from(plan.sampler.describe())),
        ("jobs", Json::from(jobs.len())),
        ("rows", Json::Arr(rows.clone())),
    ]);
    let runbook_jobs: Vec<Json> = rows
        .iter()
        .map(|row| {
            Json::obj([
                ("index", row.get("index").cloned().unwrap_or(Json::Null)),
                ("seed", row.get("seed").cloned().unwrap_or(Json::Null)),
                ("params", row.get("params").cloned().unwrap_or(Json::Null)),
                (
                    "spec_digest",
                    row.get("spec_digest").cloned().unwrap_or(Json::Null),
                ),
                (
                    "artifact_digest",
                    row.get("artifact_digest").cloned().unwrap_or(Json::Null),
                ),
            ])
        })
        .collect();
    let runbook = Json::obj([
        ("plan", Json::from(&plan.name)),
        ("plan_hash", Json::from(plan_hash.as_str())),
        ("version", Json::from(version)),
        ("seed", Json::from(plan.seed)),
        ("sampler", Json::from(plan.sampler.describe())),
        ("describe", Json::from(plan.describe())),
        ("jobs", Json::Arr(runbook_jobs)),
    ]);
    let mut pretty = report.to_string_pretty();
    pretty.push('\n');
    write_atomic_str(&report_path, &pretty)?;
    let mut pretty = runbook.to_string_pretty();
    pretty.push('\n');
    write_atomic_str(&runbook_path, &pretty)?;

    let mut registry = arq_obs::Registry::new();
    let total = registry.counter("sweep_jobs_total");
    registry.inc(total, jobs.len() as u64);
    let run = registry.counter("sweep_jobs_run");
    registry.inc(run, pending.len() as u64);
    let skipped = registry.counter("sweep_jobs_skipped");
    registry.inc(skipped, (jobs.len() - pending.len()) as u64);

    Ok(SweepOutcome {
        report,
        runbook,
        report_path,
        runbook_path,
        journal_path,
        jobs_total: jobs.len(),
        jobs_run: pending.len(),
        jobs_skipped: jobs.len() - pending.len(),
        registry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::expand;

    fn tmp_out(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("arq-sweep-run-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_plan() -> SweepPlan {
        SweepPlan::parse(
            "name = \"tiny\"\nkind = \"trace-eval\"\nseed = 7\n\n[base]\npairs = 6_000\n\
             block = 1000\nstrategy = \"sliding(s=10)\"\n\n[[axis]]\nkey = \"strategy.s\"\n\
             values = [5, 10, 20]\n",
            "plans/tiny.toml",
        )
        .unwrap()
    }

    #[test]
    fn a_fresh_sweep_writes_report_runbook_and_journal() {
        let plan = tiny_plan();
        let jobs = expand(&plan).unwrap();
        let out = tmp_out("fresh");
        let outcome = run_sweep(&plan, &jobs, &out, false, 0, 2).unwrap();
        assert_eq!(outcome.jobs_total, 3);
        assert_eq!(outcome.jobs_run, 3);
        assert_eq!(outcome.jobs_skipped, 0);
        assert_eq!(outcome.registry.counter_value("sweep_jobs_run"), Some(3));
        let report = std::fs::read_to_string(&outcome.report_path).unwrap();
        let parsed = json::parse(&report).unwrap();
        let rows = parsed.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0].get("spec").and_then(Json::as_str).unwrap(),
            "trace-eval|trace=paper-default(pairs=6000,seed=7)|strategy=sliding(s=5)|block=1000"
        );
        // Journal: header + one record per job.
        assert_eq!(Journal::read_lines(&outcome.journal_path).unwrap().len(), 4);
        let runbook =
            json::parse(&std::fs::read_to_string(&outcome.runbook_path).unwrap()).unwrap();
        assert_eq!(
            runbook.get("plan_hash").and_then(Json::as_str).unwrap(),
            format!("{:016x}", plan.hash())
        );
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn resume_skips_journaled_jobs_and_reproduces_bytes() {
        let plan = tiny_plan();
        let jobs = expand(&plan).unwrap();
        let reference = tmp_out("ref");
        let straight = run_sweep(&plan, &jobs, &reference, false, 0, 1).unwrap();
        let want = std::fs::read_to_string(&straight.report_path).unwrap();

        // Run only job 0, then resume: jobs 1–2 run, 0 is skipped, and
        // the report is byte-identical to the uninterrupted one.
        let out = tmp_out("resume");
        let partial = run_sweep(&plan, &jobs[..1], &out, false, 0, 1);
        // jobs[..1] has a different job count → its journal header says 1.
        // Rewrite the header to the full count so resume accepts it, the
        // same shape a killed full run leaves behind.
        drop(partial);
        let lines = Journal::read_lines(out.join("journal.jsonl")).unwrap();
        let mut j = Journal::create(out.join("journal.jsonl")).unwrap();
        j.append(&journal_header(&plan, jobs.len())).unwrap();
        for line in &lines[1..] {
            j.append(line).unwrap();
        }
        drop(j);
        let resumed = run_sweep(&plan, &jobs, &out, true, 0, 4).unwrap();
        assert_eq!(resumed.jobs_skipped, 1);
        assert_eq!(resumed.jobs_run, 2);
        let got = std::fs::read_to_string(&resumed.report_path).unwrap();
        assert_eq!(got, want, "resumed report differs from uninterrupted");
        assert_eq!(
            std::fs::read_to_string(&resumed.runbook_path).unwrap(),
            std::fs::read_to_string(&straight.runbook_path).unwrap()
        );
        let _ = std::fs::remove_dir_all(&reference);
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn resume_rejects_a_foreign_journal() {
        let plan = tiny_plan();
        let jobs = expand(&plan).unwrap();
        let out = tmp_out("foreign");
        std::fs::create_dir_all(&out).unwrap();
        let mut j = Journal::create(out.join("journal.jsonl")).unwrap();
        j.append(
            "{\"kind\":\"arq-sweep-journal\",\"plan\":\"tiny\",\
             \"plan_hash\":\"0000000000000000\",\"jobs\":3}",
        )
        .unwrap();
        drop(j);
        let err = run_sweep(&plan, &jobs, &out, true, 0, 1).unwrap_err();
        assert!(
            err.to_string().contains("different plan"),
            "unexpected error: {err}"
        );
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn content_digest_ignores_job_position() {
        let plan = tiny_plan();
        let jobs = expand(&plan).unwrap();
        let a = run_one_with_threads(0, &jobs[1].spec, 1).unwrap();
        let b = run_one_with_threads(5, &jobs[1].spec, 1).unwrap();
        assert_ne!(a.index, b.index);
        assert_eq!(artifact_content_digest(&a), artifact_content_digest(&b));
        let c = run_one_with_threads(0, &jobs[2].spec, 1).unwrap();
        assert_ne!(artifact_content_digest(&a), artifact_content_digest(&c));
    }
}
