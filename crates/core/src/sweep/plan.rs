//! The sweep-plan model and its TOML-subset / JSON parser.
//!
//! A plan file has four parts: top-level metadata (`name`, `kind`,
//! `seed`, `sampler`, `samples`), a `[base]` table of run settings,
//! `[[axis]]` tables declaring what varies, and optional `[[job]]`
//! tables for explicit (non-product) configurations. Keys share one
//! vocabulary with the base table, so an axis can override anything the
//! base can set.
//!
//! The parser is a deliberate TOML subset — comments, `key = value`,
//! `[section]` / `[[section]]`, strings, numbers (with `_` separators),
//! and (nested, multi-line) arrays — because the workspace is
//! dependency-free. Dotted keys (`catalog.topics`, `strategy.s`) are
//! kept literal: the dot is part of the key name. Files whose first
//! non-space byte is `{` parse as JSON instead via `simkern::json`.
//!
//! Every error carries the plan path; syntax errors carry the byte
//! offset of the offending construct, and unknown keys list the valid
//! vocabulary — the same quality bar as registry-spec errors.

use arq_simkern::json::{self, Json};
use arq_simkern::rng::fnv1a;

/// The default sweep seed: the paper's submission date, matching the
/// experiment harness's default.
pub const DEFAULT_SEED: u64 = 20_060_814;

/// Base/axis keys valid in a `kind = "trace-eval"` plan.
pub const TRACE_KEYS: &[&str] = &["trace", "pairs", "seed", "block", "strategy", "obs"];

/// Base/axis keys valid in a `kind = "live-sim"` plan.
pub const LIVE_KEYS: &[&str] = &[
    "policy",
    "nodes",
    "queries",
    "seed",
    "ttl",
    "interval",
    "topology",
    "catalog.topics",
    "catalog.files",
    "churn",
    "churn.session",
    "churn.downtime",
    "faults",
    "links",
    "retry",
    "adapt",
    "obs",
];

/// Spec-string keys that additionally accept `key.<param>` overrides
/// (patching one parameter of the spec instead of replacing it).
const TRACE_SPEC_KEYS: &[&str] = &["strategy"];
const LIVE_SPEC_KEYS: &[&str] = &["policy", "faults", "links", "retry", "adapt"];

/// A plan file failed to parse or validate. Carries the plan path and,
/// for syntax-level failures, the byte offset of the offending
/// construct.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    /// The plan file the error is about.
    pub path: String,
    /// Byte offset of the offending construct, when locatable.
    pub offset: Option<usize>,
    /// What is wrong.
    pub message: String,
}

impl PlanError {
    pub(crate) fn at(path: &str, offset: usize, message: impl Into<String>) -> PlanError {
        PlanError {
            path: path.to_string(),
            offset: Some(offset),
            message: message.into(),
        }
    }

    pub(crate) fn whole(path: &str, message: impl Into<String>) -> PlanError {
        PlanError {
            path: path.to_string(),
            offset: None,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(off) => write!(f, "plan `{}` at byte {off}: {}", self.path, self.message),
            None => write!(f, "plan `{}`: {}", self.path, self.message),
        }
    }
}

impl std::error::Error for PlanError {}

/// A plan value: a number or a string. Spec strings and mode switches
/// (`"none"`) are strings; everything else is numeric.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A numeric value (integers included — rendered without `.0`).
    Num(f64),
    /// A string value (spec strings, trace/topology names, `"none"`).
    Str(String),
}

impl Value {
    /// Renders the value the way registry spec strings format numbers:
    /// integer-valued floats print without a decimal point.
    pub fn render(&self) -> String {
        match self {
            Value::Num(v) => fmt_num(*v),
            Value::Str(s) => s.clone(),
        }
    }

    /// The numeric value, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Num(_) => None,
        }
    }

    /// The JSON form (used by report rows and runbooks).
    pub fn to_json(&self) -> Json {
        match self {
            Value::Num(v) if v.fract() == 0.0 && v.abs() < 9.0e15 => Json::Int(*v as i128),
            Value::Num(v) => Json::Float(*v),
            Value::Str(s) => Json::from(s),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Num(v as f64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Num(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Formats a number the way `format!("{v}")` formats the corresponding
/// integer when the value is integral — matching how the legacy
/// experiments interpolate parameters into spec strings (`hl=20000`,
/// `loss=0.05`, `c=0`).
pub(crate) fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// How a plan's axes expand into jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampler {
    /// The full cross product of every axis's points.
    Grid,
    /// A seeded latin-hypercube design of `samples` jobs: each axis is
    /// stratified into `samples` strata and visited exactly once, in an
    /// order fully determined by `(plan hash, seed)`.
    Lhs {
        /// Number of jobs (and strata per axis).
        samples: usize,
    },
}

impl Sampler {
    /// Canonical label (used in describe strings and reports).
    pub fn describe(&self) -> String {
        match self {
            Sampler::Grid => "grid".to_string(),
            Sampler::Lhs { samples } => format!("lhs(samples={samples})"),
        }
    }
}

/// Which world the plan's runs live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Trace-driven rule-maintenance evaluation.
    TraceEval,
    /// Live-network simulation.
    LiveSim,
}

impl PlanKind {
    /// The `kind = "..."` label.
    pub fn label(&self) -> &'static str {
        match self {
            PlanKind::TraceEval => "trace-eval",
            PlanKind::LiveSim => "live-sim",
        }
    }
}

/// One varying dimension of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// The keys this axis assigns. One key for a plain axis; several for
    /// a zipped axis whose points assign them jointly.
    pub keys: Vec<String>,
    /// The axis's points, one inner vector per point, aligned with
    /// `keys`. Empty when the axis is a continuous `min`/`max` range.
    pub values: Vec<Vec<Value>>,
    /// Continuous range for latin-hypercube sampling (single-key axes
    /// only).
    pub range: Option<(f64, f64)>,
}

impl Axis {
    /// The axis's identity for ordering and [`SweepPlan::set_axis_values`]
    /// lookup: its keys joined with `+`.
    pub fn key_string(&self) -> String {
        self.keys.join("+")
    }
}

/// A parsed, validated sweep plan. See the [module docs](crate::sweep)
/// for the file format.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Plan name (output directory default, report header).
    pub name: String,
    /// Which world the runs live in.
    pub kind: PlanKind,
    /// Sweep seed: the default run seed and the LHS design seed.
    pub seed: u64,
    /// Grid or latin-hypercube expansion.
    pub sampler: Sampler,
    /// Base settings, in file order.
    pub base: Vec<(String, Value)>,
    /// Varying axes, in file order (expansion sorts by key).
    pub axes: Vec<Axis>,
    /// Explicit job overrides, appended after the sampled jobs.
    pub jobs: Vec<Vec<(String, Value)>>,
    /// The plan file path, carried into every later error.
    pub path: String,
}

impl SweepPlan {
    /// Parses and validates a plan from `text`. `path` is the file name
    /// used in error messages and provenance; it is not read from.
    pub fn parse(text: &str, path: &str) -> Result<SweepPlan, PlanError> {
        let raw = if text.trim_start().starts_with('{') {
            raw_from_json(text, path)?
        } else {
            parse_toml_subset(text, path)?
        };
        build_plan(raw, path)
    }

    /// Reads and parses the plan file at `path`.
    pub fn load(path: &str) -> Result<SweepPlan, PlanError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| PlanError::whole(path, format!("cannot read plan: {e}")))?;
        SweepPlan::parse(&text, path)
    }

    /// Sets (or adds) a base setting — how harness wrappers scale a
    /// checked-in plan without editing the file.
    pub fn set_base(&mut self, key: &str, value: impl Into<Value>) -> Result<(), PlanError> {
        validate_key(self.kind, key).map_err(|m| PlanError::whole(&self.path, m))?;
        let value = value.into();
        match self.base.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => self.base.push((key.to_string(), value)),
        }
        Ok(())
    }

    /// Replaces the points of the axis identified by `key_string`
    /// (single key, or zipped keys joined with `+`).
    pub fn set_axis_values(
        &mut self,
        key_string: &str,
        values: Vec<Vec<Value>>,
    ) -> Result<(), PlanError> {
        let Some(axis) = self.axes.iter_mut().find(|a| a.key_string() == key_string) else {
            let have: Vec<String> = self.axes.iter().map(Axis::key_string).collect();
            return Err(PlanError::whole(
                &self.path,
                format!(
                    "no axis `{key_string}` to override (axes: {})",
                    have.join(", ")
                ),
            ));
        };
        for point in &values {
            if point.len() != axis.keys.len() {
                return Err(PlanError::whole(
                    &self.path,
                    format!(
                        "axis `{key_string}` points must assign {} value(s), got {}",
                        axis.keys.len(),
                        point.len()
                    ),
                ));
            }
        }
        axis.values = values;
        axis.range = None;
        Ok(())
    }

    /// Sets (or adds) a key in the `index`-th explicit `[[job]]` entry.
    pub fn set_job(
        &mut self,
        index: usize,
        key: &str,
        value: impl Into<Value>,
    ) -> Result<(), PlanError> {
        validate_key(self.kind, key).map_err(|m| PlanError::whole(&self.path, m))?;
        let n = self.jobs.len();
        let Some(job) = self.jobs.get_mut(index) else {
            return Err(PlanError::whole(
                &self.path,
                format!("no job #{index} to override (plan has {n})"),
            ));
        };
        let value = value.into();
        match job.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => job.push((key.to_string(), value)),
        }
        Ok(())
    }

    /// Canonical description of the whole plan: base settings sorted by
    /// key, axes sorted by key string. Two plans that expand to the same
    /// jobs in the same order describe identically, however their file
    /// happens to order sections.
    pub fn describe(&self) -> String {
        let mut base: Vec<&(String, Value)> = self.base.iter().collect();
        base.sort_by(|a, b| a.0.cmp(&b.0));
        let base: Vec<String> = base
            .iter()
            .map(|(k, v)| format!("{k}={}", v.render()))
            .collect();
        let mut axes: Vec<&Axis> = self.axes.iter().collect();
        axes.sort_by_key(|a| a.key_string());
        let axes: Vec<String> = axes
            .iter()
            .map(|a| {
                let points = match a.range {
                    Some((lo, hi)) => format!("range[{},{}]", fmt_num(lo), fmt_num(hi)),
                    None => {
                        let pts: Vec<String> = a
                            .values
                            .iter()
                            .map(|p| {
                                let vs: Vec<String> = p.iter().map(Value::render).collect();
                                vs.join("+")
                            })
                            .collect();
                        pts.join(";")
                    }
                };
                format!("{}:{points}", a.key_string())
            })
            .collect();
        let jobs: Vec<String> = self
            .jobs
            .iter()
            .map(|j| {
                let kv: Vec<String> = j
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.render()))
                    .collect();
                kv.join(",")
            })
            .collect();
        format!(
            "sweep|name={}|kind={}|seed={}|sampler={}|base={{{}}}|axes=[{}]|jobs=[{}]",
            self.name,
            self.kind.label(),
            self.seed,
            self.sampler.describe(),
            base.join(","),
            axes.join(" "),
            jobs.join(" "),
        )
    }

    /// FNV-1a digest of [`Self::describe`] — the plan's identity in
    /// journals, runbooks, and LHS stream derivation.
    pub fn hash(&self) -> u64 {
        fnv1a(self.describe().as_bytes())
    }
}

/// Validates a base/axis/job key against the plan kind's vocabulary.
pub(crate) fn validate_key(kind: PlanKind, key: &str) -> Result<(), String> {
    let (keys, spec_keys) = match kind {
        PlanKind::TraceEval => (TRACE_KEYS, TRACE_SPEC_KEYS),
        PlanKind::LiveSim => (LIVE_KEYS, LIVE_SPEC_KEYS),
    };
    if keys.contains(&key) {
        return Ok(());
    }
    if let Some((head, param)) = key.split_once('.') {
        if spec_keys.contains(&head) && !param.is_empty() {
            return Ok(());
        }
    }
    let overrides: Vec<String> = spec_keys.iter().map(|k| format!("{k}.<param>")).collect();
    Err(format!(
        "unknown key `{key}` for a {} plan (valid: {}; plus {} overrides)",
        kind.label(),
        keys.join(", "),
        overrides.join(", "),
    ))
}

/// A key/value entry with the byte offset of its key (when the source
/// format provides one — JSON plans do not).
#[derive(Debug, Clone)]
struct Entry {
    key: String,
    value: Json,
    offset: Option<usize>,
}

/// The raw sectioned form both parsers produce.
#[derive(Debug, Clone, Default)]
struct RawPlan {
    top: Vec<Entry>,
    base: Vec<Entry>,
    axes: Vec<Vec<Entry>>,
    jobs: Vec<Vec<Entry>>,
}

// ---------------------------------------------------------------------
// TOML-subset parser
// ---------------------------------------------------------------------

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
    path: &'a str,
}

impl<'a> Cursor<'a> {
    fn err(&self, offset: usize, message: impl Into<String>) -> PlanError {
        PlanError::at(self.path, offset, message)
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Skips whitespace (including newlines) and `#` comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    /// Skips spaces and tabs only (within a line).
    fn skip_inline(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.bump();
        }
    }

    fn is_key_char(c: char) -> bool {
        c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.')
    }

    fn parse_key(&mut self) -> Result<(String, usize), PlanError> {
        let start = self.pos;
        while self.peek().is_some_and(Self::is_key_char) {
            self.bump();
        }
        if self.pos == start {
            let got = self
                .peek()
                .map_or("end of file".to_string(), |c| format!("`{c}`"));
            return Err(self.err(start, format!("expected a key, found {got}")));
        }
        Ok((self.text[start..self.pos].to_string(), start))
    }

    fn parse_string(&mut self) -> Result<Json, PlanError> {
        let open = self.pos;
        self.bump(); // consume the opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(open, "unterminated string".to_string())),
                Some('\n') => {
                    return Err(self.err(open, "unterminated string (newline before closing `\"`)"))
                }
                Some('"') => return Ok(Json::Str(s)),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    other => {
                        return Err(self.err(
                            self.pos.saturating_sub(1),
                            format!(
                                "unsupported escape `\\{}` (only \\\" and \\\\)",
                                other.map_or(String::new(), String::from)
                            ),
                        ))
                    }
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, PlanError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E' | '_'))
        {
            self.bump();
        }
        let raw = &self.text[start..self.pos];
        let cleaned: String = raw.chars().filter(|&c| c != '_').collect();
        if let Ok(i) = cleaned.parse::<i128>() {
            return Ok(Json::Int(i));
        }
        cleaned
            .parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(start, format!("cannot parse `{raw}` as a number")))
    }

    fn parse_array(&mut self) -> Result<Json, PlanError> {
        let open = self.pos;
        self.bump(); // consume `[`
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            match self.peek() {
                None => return Err(self.err(open, "unterminated array (missing `]`)")),
                Some(']') => {
                    self.bump();
                    return Ok(Json::Arr(items));
                }
                Some(',') => {
                    self.bump();
                }
                _ => items.push(self.parse_value()?),
            }
        }
    }

    fn parse_value(&mut self) -> Result<Json, PlanError> {
        match self.peek() {
            Some('"') => self.parse_string(),
            Some('[') => self.parse_array(),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.parse_number(),
            Some('t') | Some('f') => Err(self.err(
                self.pos,
                "booleans are not used in sweep plans (use a string or number)",
            )),
            other => Err(self.err(
                self.pos,
                format!(
                    "expected a value (string, number, or array), found {}",
                    other.map_or("end of file".to_string(), |c| format!("`{c}`"))
                ),
            )),
        }
    }
}

fn parse_toml_subset(text: &str, path: &str) -> Result<RawPlan, PlanError> {
    let mut cur = Cursor { text, pos: 0, path };
    let mut raw = RawPlan::default();
    // Which section subsequent `key = value` lines land in.
    enum Target {
        Top,
        Base,
        Axis,
        Job,
    }
    let mut target = Target::Top;
    loop {
        cur.skip_trivia();
        let Some(c) = cur.peek() else { break };
        if c == '[' {
            let at = cur.pos;
            cur.bump();
            let double = cur.peek() == Some('[');
            if double {
                cur.bump();
            }
            cur.skip_inline();
            let (name, name_at) = cur.parse_key()?;
            cur.skip_inline();
            for _ in 0..(1 + usize::from(double)) {
                if cur.bump() != Some(']') {
                    return Err(cur.err(at, format!("unterminated section header `[{name}`")));
                }
            }
            target = match (name.as_str(), double) {
                ("base", false) => Target::Base,
                ("axis", true) => {
                    raw.axes.push(Vec::new());
                    Target::Axis
                }
                ("job", true) => {
                    raw.jobs.push(Vec::new());
                    Target::Job
                }
                ("axis", false) | ("job", false) => {
                    return Err(cur.err(
                        name_at,
                        format!("section `{name}` is an array of tables: write `[[{name}]]`"),
                    ))
                }
                ("base", true) => {
                    return Err(cur.err(name_at, "section `base` is a table: write `[base]`"))
                }
                _ => {
                    return Err(cur.err(
                        name_at,
                        format!("unknown section `[{name}]` (valid: [base], [[axis]], [[job]])"),
                    ))
                }
            };
            continue;
        }
        let (key, key_at) = cur.parse_key()?;
        cur.skip_inline();
        if cur.bump() != Some('=') {
            return Err(cur.err(key_at, format!("expected `=` after key `{key}`")));
        }
        cur.skip_inline();
        let value = cur.parse_value()?;
        let entry = Entry {
            key,
            value,
            offset: Some(key_at),
        };
        match target {
            Target::Top => raw.top.push(entry),
            Target::Base => raw.base.push(entry),
            Target::Axis => raw.axes.last_mut().expect("axis section open").push(entry),
            Target::Job => raw.jobs.last_mut().expect("job section open").push(entry),
        }
    }
    Ok(raw)
}

// ---------------------------------------------------------------------
// JSON front end
// ---------------------------------------------------------------------

fn raw_from_json(text: &str, path: &str) -> Result<RawPlan, PlanError> {
    let doc = json::parse(text)
        .map_err(|e| PlanError::at(path, e.offset, format!("JSON plan: {}", e.message)))?;
    let Json::Obj(fields) = doc else {
        return Err(PlanError::whole(path, "JSON plan must be an object"));
    };
    let entries = |v: &Json, what: &str| -> Result<Vec<Entry>, PlanError> {
        match v {
            Json::Obj(fields) => Ok(fields
                .iter()
                .map(|(k, v)| Entry {
                    key: k.clone(),
                    value: v.clone(),
                    offset: None,
                })
                .collect()),
            _ => Err(PlanError::whole(
                path,
                format!("`{what}` must be an object"),
            )),
        }
    };
    let mut raw = RawPlan::default();
    for (key, value) in &fields {
        match key.as_str() {
            "base" => raw.base = entries(value, "base")?,
            "axes" | "jobs" => {
                let Json::Arr(items) = value else {
                    return Err(PlanError::whole(
                        path,
                        format!("`{key}` must be an array of objects"),
                    ));
                };
                let dest = if key == "axes" {
                    &mut raw.axes
                } else {
                    &mut raw.jobs
                };
                for (i, item) in items.iter().enumerate() {
                    dest.push(entries(item, &format!("{key}[{i}]"))?);
                }
            }
            _ => raw.top.push(Entry {
                key: key.clone(),
                value: value.clone(),
                offset: None,
            }),
        }
    }
    Ok(raw)
}

// ---------------------------------------------------------------------
// Raw → validated plan
// ---------------------------------------------------------------------

fn scalar(path: &str, entry: &Entry) -> Result<Value, PlanError> {
    match &entry.value {
        Json::Int(i) => Ok(Value::Num(*i as f64)),
        Json::Float(v) => Ok(Value::Num(*v)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        other => Err(PlanError {
            path: path.to_string(),
            offset: entry.offset,
            message: format!("key `{}` needs a string or number, got {other}", entry.key),
        }),
    }
}

fn build_plan(raw: RawPlan, path: &str) -> Result<SweepPlan, PlanError> {
    let whole = |m: String| PlanError::whole(path, m);
    let mut name = None;
    let mut kind = None;
    let mut seed = DEFAULT_SEED;
    let mut sampler_label: Option<(String, Option<usize>)> = None;
    let mut samples: Option<usize> = None;
    for e in &raw.top {
        let located = |m: String| PlanError {
            path: path.to_string(),
            offset: e.offset,
            message: m,
        };
        match e.key.as_str() {
            "name" => {
                name = Some(
                    scalar(path, e)?
                        .as_str()
                        .ok_or_else(|| located("`name` must be a string".into()))?
                        .to_string(),
                )
            }
            "kind" => {
                let v = scalar(path, e)?;
                kind = Some(match v.as_str() {
                    Some("trace-eval") => PlanKind::TraceEval,
                    Some("live-sim") => PlanKind::LiveSim,
                    _ => {
                        return Err(located(format!(
                            "`kind` must be \"trace-eval\" or \"live-sim\", got {}",
                            v.render()
                        )))
                    }
                });
            }
            "seed" => {
                seed = scalar(path, e)?
                    .as_num()
                    .filter(|v| v.fract() == 0.0 && *v >= 0.0)
                    .ok_or_else(|| located("`seed` must be a non-negative integer".into()))?
                    as u64;
            }
            "sampler" => {
                let v = scalar(path, e)?;
                sampler_label = Some((
                    v.as_str()
                        .ok_or_else(|| located("`sampler` must be \"grid\" or \"lhs\"".into()))?
                        .to_string(),
                    e.offset,
                ));
            }
            "samples" => {
                samples = Some(
                    scalar(path, e)?
                        .as_num()
                        .filter(|v| v.fract() == 0.0 && *v >= 1.0)
                        .ok_or_else(|| located("`samples` must be a positive integer".into()))?
                        as usize,
                );
            }
            other => {
                return Err(located(format!(
                    "unknown top-level key `{other}` (valid: name, kind, seed, sampler, samples)"
                )))
            }
        }
    }
    let name = name.ok_or_else(|| whole("missing required top-level key `name`".into()))?;
    let kind = kind.ok_or_else(|| whole("missing required top-level key `kind`".into()))?;
    let sampler = match sampler_label.as_ref().map(|(s, o)| (s.as_str(), o)) {
        None | Some(("grid", _)) => {
            if samples.is_some() {
                return Err(whole("`samples` requires `sampler = \"lhs\"`".into()));
            }
            Sampler::Grid
        }
        Some(("lhs", _)) => Sampler::Lhs {
            samples: samples
                .ok_or_else(|| whole("`sampler = \"lhs\"` requires a `samples` count".into()))?,
        },
        Some((other, offset)) => {
            return Err(PlanError {
                path: path.to_string(),
                offset: *offset,
                message: format!("unknown sampler `{other}` (valid: grid, lhs)"),
            })
        }
    };

    let keyed = |entries: &[Entry]| -> Result<Vec<(String, Value)>, PlanError> {
        entries
            .iter()
            .map(|e| {
                validate_key(kind, &e.key).map_err(|m| PlanError {
                    path: path.to_string(),
                    offset: e.offset,
                    message: m,
                })?;
                Ok((e.key.clone(), scalar(path, e)?))
            })
            .collect()
    };
    let base = keyed(&raw.base)?;
    let jobs: Vec<Vec<(String, Value)>> = raw
        .jobs
        .iter()
        .map(|j| keyed(j))
        .collect::<Result<_, _>>()?;

    let mut axes = Vec::new();
    for entries in &raw.axes {
        axes.push(build_axis(entries, kind, path)?);
    }

    Ok(SweepPlan {
        name,
        kind,
        seed,
        sampler,
        base,
        axes,
        jobs,
        path: path.to_string(),
    })
}

fn build_axis(entries: &[Entry], kind: PlanKind, path: &str) -> Result<Axis, PlanError> {
    let mut keys: Option<(Vec<String>, Option<usize>)> = None;
    let mut values_json: Option<(Json, Option<usize>)> = None;
    let mut min = None;
    let mut max = None;
    for e in entries {
        let located = |m: String| PlanError {
            path: path.to_string(),
            offset: e.offset,
            message: m,
        };
        match e.key.as_str() {
            "key" => {
                let v = scalar(path, e)?;
                let k = v
                    .as_str()
                    .ok_or_else(|| located("axis `key` must be a string".into()))?;
                keys = Some((vec![k.to_string()], e.offset));
            }
            "keys" => {
                let Json::Arr(items) = &e.value else {
                    return Err(located("axis `keys` must be an array of strings".into()));
                };
                let mut ks = Vec::new();
                for item in items {
                    let Json::Str(s) = item else {
                        return Err(located("axis `keys` must be an array of strings".into()));
                    };
                    ks.push(s.clone());
                }
                if ks.is_empty() {
                    return Err(located("axis `keys` must not be empty".into()));
                }
                keys = Some((ks, e.offset));
            }
            "values" => values_json = Some((e.value.clone(), e.offset)),
            "min" => {
                min = Some(
                    scalar(path, e)?
                        .as_num()
                        .ok_or_else(|| located("axis `min` must be a number".into()))?,
                )
            }
            "max" => {
                max = Some(
                    scalar(path, e)?
                        .as_num()
                        .ok_or_else(|| located("axis `max` must be a number".into()))?,
                )
            }
            other => {
                return Err(located(format!(
                    "unknown axis field `{other}` (valid: key, keys, values, min, max)"
                )))
            }
        }
    }
    let (keys, keys_at) =
        keys.ok_or_else(|| PlanError::whole(path, "axis needs a `key` (or `keys`)"))?;
    for k in &keys {
        validate_key(kind, k).map_err(|m| PlanError {
            path: path.to_string(),
            offset: keys_at,
            message: m,
        })?;
    }
    let range = match (min, max) {
        (Some(lo), Some(hi)) if hi > lo => Some((lo, hi)),
        (Some(lo), Some(hi)) => {
            return Err(PlanError::whole(
                path,
                format!("axis `{}`: min {lo} must be below max {hi}", keys.join("+")),
            ))
        }
        (None, None) => None,
        _ => {
            return Err(PlanError::whole(
                path,
                format!("axis `{}` has only one of min/max", keys.join("+")),
            ))
        }
    };
    if range.is_some() && keys.len() != 1 {
        return Err(PlanError::whole(
            path,
            "a min/max range axis must have a single key",
        ));
    }
    let mut values = Vec::new();
    if let Some((json_values, at)) = values_json {
        if range.is_some() {
            return Err(PlanError::whole(
                path,
                format!(
                    "axis `{}` has both `values` and a min/max range",
                    keys.join("+")
                ),
            ));
        }
        let located = |m: String| PlanError {
            path: path.to_string(),
            offset: at,
            message: m,
        };
        let Json::Arr(points) = json_values else {
            return Err(located("axis `values` must be an array".into()));
        };
        if points.is_empty() {
            return Err(located(format!("axis `{}` has no values", keys.join("+"))));
        }
        for point in points {
            let assigned: Vec<Value> = if keys.len() == 1 {
                vec![json_scalar(&point).map_err(&located)?]
            } else {
                let Json::Arr(items) = &point else {
                    return Err(located(format!(
                        "zipped axis `{}` points must be arrays of {} values",
                        keys.join("+"),
                        keys.len()
                    )));
                };
                if items.len() != keys.len() {
                    return Err(located(format!(
                        "zipped axis `{}` point has {} values, needs {}",
                        keys.join("+"),
                        items.len(),
                        keys.len()
                    )));
                }
                items
                    .iter()
                    .map(json_scalar)
                    .collect::<Result<_, _>>()
                    .map_err(&located)?
            };
            values.push(assigned);
        }
    } else if range.is_none() {
        return Err(PlanError::whole(
            path,
            format!(
                "axis `{}` needs `values` (or a min/max range under the lhs sampler)",
                keys.join("+")
            ),
        ));
    }
    Ok(Axis {
        keys,
        values,
        range,
    })
}

fn json_scalar(v: &Json) -> Result<Value, String> {
    match v {
        Json::Int(i) => Ok(Value::Num(*i as f64)),
        Json::Float(f) => Ok(Value::Num(*f)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        other => Err(format!(
            "axis values must be strings or numbers, got {other}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E3ISH: &str = r#"
# A block-size sweep.
name = "e3ish"
kind = "trace-eval"
seed = 7

[base]
trace = "shared-paper-default"
pairs = 120_000
strategy = "sliding(s=10)"

[[axis]]
key = "block"
values = [2500, 5000, 10000]
"#;

    #[test]
    fn toml_subset_round_trips() {
        let plan = SweepPlan::parse(E3ISH, "plans/e3ish.toml").unwrap();
        assert_eq!(plan.name, "e3ish");
        assert_eq!(plan.kind, PlanKind::TraceEval);
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.sampler, Sampler::Grid);
        assert_eq!(plan.base[1], ("pairs".into(), Value::Num(120_000.0)));
        assert_eq!(plan.axes.len(), 1);
        assert_eq!(plan.axes[0].keys, vec!["block"]);
        assert_eq!(plan.axes[0].values.len(), 3);
    }

    #[test]
    fn json_plans_parse_identically() {
        let json = r#"{
            "name": "e3ish", "kind": "trace-eval", "seed": 7,
            "base": {"trace": "shared-paper-default", "pairs": 120000,
                     "strategy": "sliding(s=10)"},
            "axes": [{"key": "block", "values": [2500, 5000, 10000]}]
        }"#;
        let a = SweepPlan::parse(E3ISH, "p.toml").unwrap();
        let b = SweepPlan::parse(json, "p.json").unwrap();
        assert_eq!(a.describe(), b.describe());
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn describe_is_invariant_under_section_reordering() {
        let reordered = r#"
name = "e3ish"
kind = "trace-eval"
seed = 7

[[axis]]
key = "block"
values = [2500, 5000, 10000]

[base]
strategy = "sliding(s=10)"
pairs = 120_000
trace = "shared-paper-default"
"#;
        let a = SweepPlan::parse(E3ISH, "p.toml").unwrap();
        let b = SweepPlan::parse(reordered, "p.toml").unwrap();
        assert_eq!(a.describe(), b.describe());
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn unknown_keys_list_the_valid_vocabulary() {
        let bad = E3ISH.replace("key = \"block\"", "key = \"blok\"");
        let e = SweepPlan::parse(&bad, "plans/bad.toml").unwrap_err();
        assert_eq!(e.path, "plans/bad.toml");
        let msg = e.to_string();
        assert!(msg.contains("unknown key `blok`"), "{msg}");
        for key in TRACE_KEYS {
            assert!(msg.contains(key), "`{key}` missing from: {msg}");
        }
        assert!(msg.contains("strategy.<param>"), "{msg}");
    }

    #[test]
    fn malformed_values_carry_path_and_byte_offset() {
        let bad = E3ISH.replace("values = [2500, 5000, 10000]", "values = [2500, 5000");
        let e = SweepPlan::parse(&bad, "plans/bad.toml").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("plans/bad.toml"), "{msg}");
        assert!(msg.contains("at byte"), "{msg}");
        assert!(msg.contains("unterminated array"), "{msg}");
        let offset = e.offset.expect("syntax errors are located");
        assert_eq!(&bad[offset..offset + 1], "[");

        let bad = E3ISH.replace("pairs = 120_000", "pairs = 12q");
        let e = SweepPlan::parse(&bad, "plans/bad.toml").unwrap_err();
        assert!(e.offset.is_some(), "{e}");

        let e = json::parse("{\"name\": }").unwrap_err();
        assert!(e.offset > 0);
        let e = SweepPlan::parse("{\"name\": }", "plans/bad.json").unwrap_err();
        assert!(e.to_string().contains("at byte"), "{e}");
    }

    #[test]
    fn unknown_sections_and_samplers_are_rejected() {
        let e = SweepPlan::parse("name = \"x\"\nkind = \"trace-eval\"\n[bass]\n", "p.toml")
            .unwrap_err();
        assert!(e.to_string().contains("unknown section `[bass]`"), "{e}");
        let e = SweepPlan::parse(
            "name = \"x\"\nkind = \"trace-eval\"\nsampler = \"lhss\"\n",
            "p.toml",
        )
        .unwrap_err();
        assert!(e.to_string().contains("unknown sampler `lhss`"), "{e}");
        let e = SweepPlan::parse("name = \"x\"\nkind = \"sim\"\n", "p.toml").unwrap_err();
        assert!(e.to_string().contains("trace-eval"), "{e}");
        let e = SweepPlan::parse("name = \"x\"\n", "p.toml").unwrap_err();
        assert!(e.to_string().contains("missing required"), "{e}");
    }

    #[test]
    fn lhs_needs_samples_and_grid_rejects_them() {
        let e = SweepPlan::parse(
            "name = \"x\"\nkind = \"trace-eval\"\nsampler = \"lhs\"\n",
            "p.toml",
        )
        .unwrap_err();
        assert!(e.to_string().contains("requires a `samples`"), "{e}");
        let e = SweepPlan::parse(
            "name = \"x\"\nkind = \"trace-eval\"\nsamples = 4\n",
            "p.toml",
        )
        .unwrap_err();
        assert!(
            e.to_string().contains("requires `sampler = \"lhs\"`"),
            "{e}"
        );
    }

    #[test]
    fn zipped_axes_validate_point_arity() {
        let plan = r#"
name = "z"
kind = "live-sim"
[[axis]]
keys = ["interval", "links"]
values = [[2000, "none"], [500]]
"#;
        let e = SweepPlan::parse(plan, "p.toml").unwrap_err();
        assert!(e.to_string().contains("has 1 values, needs 2"), "{e}");
    }

    #[test]
    fn mutation_api_validates_keys() {
        let mut plan = SweepPlan::parse(E3ISH, "p.toml").unwrap();
        plan.set_base("pairs", 64_000usize).unwrap();
        assert!(plan.describe().contains("pairs=64000"));
        let e = plan.set_base("pears", 1usize).unwrap_err();
        assert!(e.to_string().contains("unknown key `pears`"), "{e}");
        plan.set_axis_values("block", vec![vec![Value::Num(100.0)]])
            .unwrap();
        assert_eq!(plan.axes[0].values.len(), 1);
        let e = plan
            .set_axis_values("blok", vec![vec![Value::Num(1.0)]])
            .unwrap_err();
        assert!(e.to_string().contains("no axis `blok`"), "{e}");
    }

    #[test]
    fn value_rendering_matches_legacy_interpolation() {
        assert_eq!(Value::Num(20_000.0).render(), "20000");
        assert_eq!(Value::Num(0.05).render(), "0.05");
        assert_eq!(Value::Num(0.0).render(), "0");
        assert_eq!(Value::Num(5e-5).render(), "0.00005");
        assert_eq!(
            Value::Str("faults(loss=0.3)".into()).render(),
            "faults(loss=0.3)"
        );
    }
}
