//! Declarative sweep plans and reproducibility runbooks.
//!
//! A [`SweepPlan`] — a checked-in TOML (or JSON) file under `plans/` —
//! declares a base run (trace evaluation or live simulation, in
//! registry-spec vocabulary) plus *axes* to vary: whole spec strings
//! (`policy`, `faults`, `links`, …), single spec parameters
//! (`strategy.s`, `faults.loss`), or simulator knobs (`block`,
//! `interval`, `nodes`). [`expand`] turns the plan into a deterministic,
//! stably-ordered [`SweepJob`] list — a grid (cross product) or a seeded
//! latin-hypercube design — whose order is invariant under axis
//! reordering in the file and whose LHS permutations are fully
//! determined by `(plan hash, seed)`.
//!
//! [`run_sweep`] fans the jobs over the engine's deterministic executor
//! (same `ARQ_THREADS` budget split), journaling every completed job —
//! one fsync'd JSONL record — so an interrupted sweep (`kill -9`
//! included) resumes by skipping exactly the finished jobs. The outputs,
//! written via `simkern::write_atomic`, are:
//!
//! * `report.json` — the [`SweepReport`]: one canonical-JSON row per job
//!   (expanded spec string, seed, artifact digest, headline metrics);
//! * `runbook.json` — the manifest: plan hash, arq version, seeds, and
//!   per-job artifact digests;
//! * `journal.jsonl` — the completion journal the report is assembled
//!   from, which is what makes a resumed sweep byte-identical to an
//!   uninterrupted one.
//!
//! Plan-file errors match registry-spec quality: unknown keys list the
//! valid keys, malformed values carry the plan path and byte offset.
//!
//! [`SweepReport`]: run_sweep

mod expand;
mod plan;
mod run;

pub use expand::{expand, SweepJob};
pub use plan::{Axis, PlanError, PlanKind, Sampler, SweepPlan, Value};
pub use run::{artifact_content_digest, run_sweep, SweepError, SweepOutcome};
