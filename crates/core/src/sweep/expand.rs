//! Plan → job-list expansion.
//!
//! [`expand`] turns a validated [`SweepPlan`] into a deterministic,
//! stably-ordered list of [`SweepJob`]s. Axes are processed in sorted
//! key order — never file order — so two plan files that differ only in
//! the order of their `[[axis]]` blocks expand to the *same* job list.
//! Under the grid sampler the jobs are the row-major cross product of
//! every axis's points (the first sorted axis varies slowest, each
//! axis's points keep their declared order); under the latin-hypercube
//! sampler there are exactly `samples` jobs, each axis visiting each of
//! its strata exactly once in a permutation drawn from a stream seeded
//! by `(plan hash, seed)` — re-expanding the same plan always yields the
//! same design. Explicit `[[job]]` entries are appended after the
//! sampled jobs in file order.
//!
//! Key application builds each job's [`RunSpec`] from the engine's own
//! defaults (`SimConfig::default_with`) plus the base settings plus the
//! job's assignments. Spec-parameter keys (`strategy.s`, `faults.loss`)
//! patch the single parameter through the registry's spec grammar and
//! re-emit, so the expanded spec strings are byte-identical to what the
//! hand-coded experiments interpolated.

use super::plan::{fmt_num, validate_key, Axis, PlanError, PlanKind, Sampler, SweepPlan, Value};
use crate::engine::registry::{self};
use crate::engine::spec::{RunSpec, TraceSource};
use crate::engine::{
    executor, make_adapt_plan, make_fault_plan, make_link_plan, make_retry_policy,
};
use arq_gnutella::sim::{SimConfig, Topology};
use arq_overlay::ChurnConfig;
use arq_simkern::rng::StreamFactory;
use arq_simkern::time::Duration;
use arq_trace::record::PairRecord;
use arq_trace::{SynthConfig, SynthTrace};
use std::sync::Arc;

/// One expanded unit of a sweep: its stable position, the assignments
/// that distinguish it from the base (axis order), and the fully built
/// run spec.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Stable position in the expanded job list.
    pub index: usize,
    /// The varying assignments (axis keys in sorted-axis order, or the
    /// explicit `[[job]]` entries), each as `(key, value)`.
    pub params: Vec<(String, Value)>,
    /// The run this job executes.
    pub spec: RunSpec,
}

impl SweepJob {
    /// The value assigned to `key` by this job's params, rendered the
    /// way spec strings render it — for report rows and row lookup.
    pub fn param(&self, key: &str) -> Option<String> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.render())
    }
}

/// Expands a plan into its deterministic job list. See the module docs
/// for the ordering contract.
pub fn expand(plan: &SweepPlan) -> Result<Vec<SweepJob>, PlanError> {
    let mut axes: Vec<&Axis> = plan.axes.iter().collect();
    axes.sort_by_key(|a| a.key_string());

    // The per-job assignment lists, before base application.
    let mut assignment_sets: Vec<Vec<(String, Value)>> = Vec::new();
    match plan.sampler {
        Sampler::Grid => {
            for axis in &axes {
                if axis.range.is_some() {
                    return Err(PlanError::whole(
                        &plan.path,
                        format!(
                            "axis `{}` is a min/max range, which requires `sampler = \"lhs\"`",
                            axis.key_string()
                        ),
                    ));
                }
            }
            let counts: Vec<usize> = axes.iter().map(|a| a.values.len()).collect();
            let total: usize = counts.iter().product();
            if !axes.is_empty() {
                for flat in 0..total {
                    // Row-major: the last sorted axis varies fastest.
                    let mut rem = flat;
                    let mut picks = vec![0usize; axes.len()];
                    for ax in (0..axes.len()).rev() {
                        picks[ax] = rem % counts[ax];
                        rem /= counts[ax];
                    }
                    let mut assignments = Vec::new();
                    for (axis, &pick) in axes.iter().zip(&picks) {
                        for (key, value) in axis.keys.iter().zip(&axis.values[pick]) {
                            assignments.push((key.clone(), value.clone()));
                        }
                    }
                    assignment_sets.push(assignments);
                }
            }
        }
        Sampler::Lhs { samples } => {
            // Each axis gets an independent permutation of 0..samples,
            // derived from (plan hash, seed) and the axis key alone —
            // the design is a function of the plan, not of evaluation
            // order or thread count.
            let factory = StreamFactory::new(plan.hash());
            let mut columns: Vec<Vec<Vec<(String, Value)>>> = Vec::new();
            for axis in &axes {
                let mut rng = factory.stream_n(&format!("lhs:{}", axis.key_string()), plan.seed);
                let mut perm: Vec<usize> = (0..samples).collect();
                rng.shuffle(&mut perm);
                let mut column = Vec::with_capacity(samples);
                for &stratum in &perm {
                    let assignments: Vec<(String, Value)> = match axis.range {
                        Some((lo, hi)) => {
                            // Midpoint of the stratum: permutation-valid
                            // and reproducible without randomness within
                            // the cell.
                            let v = lo + (stratum as f64 + 0.5) / samples as f64 * (hi - lo);
                            vec![(axis.keys[0].clone(), Value::Num(v))]
                        }
                        None => {
                            if axis.values.len() != samples {
                                return Err(PlanError::whole(
                                    &plan.path,
                                    format!(
                                        "lhs axis `{}` has {} values but the design has \
                                         {samples} samples (use a min/max range, or match \
                                         the counts)",
                                        axis.key_string(),
                                        axis.values.len()
                                    ),
                                ));
                            }
                            axis.keys
                                .iter()
                                .zip(&axis.values[stratum])
                                .map(|(k, v)| (k.clone(), v.clone()))
                                .collect()
                        }
                    };
                    column.push(assignments);
                }
                columns.push(column);
            }
            if !axes.is_empty() {
                for i in 0..samples {
                    let mut assignments = Vec::new();
                    for column in &columns {
                        assignments.extend(column[i].iter().cloned());
                    }
                    assignment_sets.push(assignments);
                }
            }
        }
    }
    // Explicit jobs after the sampled ones; a plan with neither axes nor
    // jobs is a single base run.
    for job in &plan.jobs {
        assignment_sets.push(job.clone());
    }
    if assignment_sets.is_empty() {
        assignment_sets.push(Vec::new());
    }

    let mut shared = SharedTraces::default();
    let mut jobs = Vec::with_capacity(assignment_sets.len());
    for (index, assignments) in assignment_sets.into_iter().enumerate() {
        let spec = build_spec(plan, &assignments, &mut shared).map_err(|mut e| {
            e.message = format!("job #{index}: {}", e.message);
            e
        })?;
        executor::validate(&spec)
            .map_err(|re| PlanError::whole(&plan.path, format!("job #{index}: {re}")))?;
        jobs.push(SweepJob {
            index,
            params: assignments,
            spec,
        });
    }
    Ok(jobs)
}

/// A shared-trace cache key: `(pairs, seed)`.
type TraceKey = (usize, u64);

/// Pre-materialized shared traces, keyed by `(pairs, seed)` so a sweep
/// synthesizes each distinct workload once however many jobs share it.
#[derive(Default)]
struct SharedTraces {
    entries: Vec<(TraceKey, Arc<Vec<PairRecord>>)>,
}

impl SharedTraces {
    fn get(&mut self, pairs: usize, seed: u64) -> Arc<Vec<PairRecord>> {
        if let Some((_, trace)) = self
            .entries
            .iter()
            .find(|((p, s), _)| *p == pairs && *s == seed)
        {
            return Arc::clone(trace);
        }
        let trace = Arc::new(SynthTrace::new(SynthConfig::paper_default(pairs, seed)).pairs());
        self.entries.push(((pairs, seed), Arc::clone(&trace)));
        trace
    }
}

/// Everything a job's keys can set, starting from the plan defaults.
struct Draft {
    // Shared
    seed: u64,
    obs: Option<String>,
    // Trace-eval
    trace: String,
    pairs: usize,
    block: usize,
    strategy: String,
    // Live-sim
    policy: String,
    nodes: usize,
    queries: usize,
    ttl: Option<u32>,
    interval: Option<u64>,
    topology: Option<String>,
    catalog_topics: Option<usize>,
    catalog_files: Option<usize>,
    churn_none: bool,
    churn_session: Option<u64>,
    churn_downtime: Option<u64>,
    faults: Option<String>,
    links: Option<String>,
    retry: Option<String>,
    adapt: Option<String>,
}

impl Draft {
    fn new(seed: u64) -> Draft {
        Draft {
            seed,
            obs: None,
            trace: "paper-default".to_string(),
            pairs: 3_660_000,
            block: 10_000,
            strategy: "sliding(s=10)".to_string(),
            policy: "flood".to_string(),
            nodes: 800,
            queries: 4_000,
            ttl: None,
            interval: None,
            topology: None,
            catalog_topics: None,
            catalog_files: None,
            churn_none: false,
            churn_session: None,
            churn_downtime: None,
            faults: None,
            links: None,
            retry: None,
            adapt: None,
        }
    }
}

fn build_spec(
    plan: &SweepPlan,
    assignments: &[(String, Value)],
    shared: &mut SharedTraces,
) -> Result<RunSpec, PlanError> {
    let mut draft = Draft::new(plan.seed);
    for (key, value) in plan.base.iter().chain(assignments) {
        apply(plan.kind, &mut draft, key, value)
            .map_err(|m| PlanError::whole(&plan.path, format!("key `{key}`: {m}")))?;
    }
    finalize(plan.kind, draft, shared).map_err(|m| PlanError::whole(&plan.path, m))
}

/// Coerces a plan value to a non-negative integer.
fn uint(value: &Value, what: &str) -> Result<u64, String> {
    value
        .as_num()
        .filter(|v| v.fract() == 0.0 && *v >= 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| {
            format!(
                "{what} must be a non-negative integer, got {}",
                value.render()
            )
        })
}

fn spec_string(value: &Value, what: &str) -> Result<String, String> {
    value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what} must be a spec string, got {}", value.render()))
}

/// `Some(spec)` unless the value is the literal `"none"`.
fn optional_spec(value: &Value, what: &str) -> Result<Option<String>, String> {
    let s = spec_string(value, what)?;
    Ok(if s == "none" { None } else { Some(s) })
}

/// Patches one parameter of a registry spec string, preserving the
/// other parameters in their written order and appending new ones; a
/// `None`/absent current spec starts from the bare default name.
fn patch_spec(
    current: Option<&str>,
    default_name: &str,
    param: &str,
    value: &Value,
) -> Result<String, String> {
    let v = value.as_num().ok_or_else(|| {
        format!(
            "parameter `{param}` needs a numeric value, got {}",
            value.render()
        )
    })?;
    let base = match current {
        Some(s) => s.to_string(),
        None => default_name.to_string(),
    };
    let parsed = registry::parse_spec(&base).map_err(|e| e.to_string())?;
    let mut params = parsed.params;
    match params.iter_mut().find(|(k, _)| k == param) {
        Some(slot) => slot.1 = v,
        None => params.push((param.to_string(), v)),
    }
    let kv: Vec<String> = params
        .iter()
        .map(|(k, v)| format!("{k}={}", fmt_num(*v)))
        .collect();
    Ok(format!("{}({})", parsed.name, kv.join(",")))
}

fn apply(kind: PlanKind, draft: &mut Draft, key: &str, value: &Value) -> Result<(), String> {
    // Key names were validated at parse time; this match is total over
    // the vocabulary, with the dotted spec-parameter fall-through last.
    debug_assert!(validate_key(kind, key).is_ok(), "unvalidated key `{key}`");
    match (kind, key) {
        (_, "seed") => draft.seed = uint(value, "`seed`")?,
        (_, "obs") => draft.obs = optional_spec(value, "`obs`")?,
        (PlanKind::TraceEval, "trace") => {
            draft.trace = spec_string(value, "`trace`")?;
        }
        (PlanKind::TraceEval, "pairs") => draft.pairs = uint(value, "`pairs`")? as usize,
        (PlanKind::TraceEval, "block") => draft.block = uint(value, "`block`")? as usize,
        (PlanKind::TraceEval, "strategy") => draft.strategy = spec_string(value, "`strategy`")?,
        (PlanKind::LiveSim, "policy") => draft.policy = spec_string(value, "`policy`")?,
        (PlanKind::LiveSim, "nodes") => draft.nodes = uint(value, "`nodes`")? as usize,
        (PlanKind::LiveSim, "queries") => draft.queries = uint(value, "`queries`")? as usize,
        (PlanKind::LiveSim, "ttl") => draft.ttl = Some(uint(value, "`ttl`")? as u32),
        (PlanKind::LiveSim, "interval") => draft.interval = Some(uint(value, "`interval`")?),
        (PlanKind::LiveSim, "topology") => draft.topology = Some(spec_string(value, "`topology`")?),
        (PlanKind::LiveSim, "catalog.topics") => {
            draft.catalog_topics = Some(uint(value, "`catalog.topics`")? as usize)
        }
        (PlanKind::LiveSim, "catalog.files") => {
            draft.catalog_files = Some(uint(value, "`catalog.files`")? as usize)
        }
        (PlanKind::LiveSim, "churn") => {
            if value.as_str() != Some("none") {
                return Err(format!(
                    "`churn` only accepts \"none\" (use churn.session / churn.downtime to \
                     enable churn), got {}",
                    value.render()
                ));
            }
            draft.churn_none = true;
            draft.churn_session = None;
            draft.churn_downtime = None;
        }
        (PlanKind::LiveSim, "churn.session") => {
            draft.churn_session = Some(uint(value, "`churn.session`")?);
            draft.churn_none = false;
        }
        (PlanKind::LiveSim, "churn.downtime") => {
            draft.churn_downtime = Some(uint(value, "`churn.downtime`")?);
            draft.churn_none = false;
        }
        (PlanKind::LiveSim, "faults") => draft.faults = optional_spec(value, "`faults`")?,
        (PlanKind::LiveSim, "links") => draft.links = optional_spec(value, "`links`")?,
        (PlanKind::LiveSim, "retry") => draft.retry = optional_spec(value, "`retry`")?,
        (PlanKind::LiveSim, "adapt") => draft.adapt = optional_spec(value, "`adapt`")?,
        (kind, dotted) => {
            let (head, param) = dotted
                .split_once('.')
                .expect("non-dotted keys are handled above");
            match (kind, head) {
                (PlanKind::TraceEval, "strategy") => {
                    draft.strategy = patch_spec(Some(&draft.strategy), "sliding", param, value)?
                }
                (PlanKind::LiveSim, "policy") => {
                    draft.policy = patch_spec(Some(&draft.policy), "flood", param, value)?
                }
                (PlanKind::LiveSim, "faults") => {
                    draft.faults =
                        Some(patch_spec(draft.faults.as_deref(), "faults", param, value)?)
                }
                (PlanKind::LiveSim, "links") => {
                    draft.links = Some(patch_spec(draft.links.as_deref(), "links", param, value)?)
                }
                (PlanKind::LiveSim, "retry") => {
                    draft.retry = Some(patch_spec(draft.retry.as_deref(), "retry", param, value)?)
                }
                (PlanKind::LiveSim, "adapt") => {
                    draft.adapt = Some(patch_spec(draft.adapt.as_deref(), "adapt", param, value)?)
                }
                _ => unreachable!("key `{dotted}` passed validation but has no application"),
            }
        }
    }
    Ok(())
}

/// Parses a topology spec: `ba(m=3)`, `er(p=0.01)`, `ws(k=6,beta=0.1)`,
/// or `superpeer(n=40,degree=4)`.
fn parse_topology(spec: &str) -> Result<Topology, String> {
    let parsed = registry::parse_spec(spec).map_err(|e| e.to_string())?;
    let lookup = |key: &str, default: f64| -> Result<f64, String> {
        for (k, v) in &parsed.params {
            if k == key {
                return Ok(*v);
            }
            let valid: Vec<&str> = match parsed.name.as_str() {
                "ba" => vec!["m"],
                "er" => vec!["p"],
                "ws" => vec!["k", "beta"],
                _ => vec!["n", "degree"],
            };
            if !valid.contains(&k.as_str()) {
                return Err(format!(
                    "topology `{}`: unknown parameter `{k}` (valid: {})",
                    parsed.name,
                    valid.join(", ")
                ));
            }
        }
        Ok(default)
    };
    match parsed.name.as_str() {
        "ba" => Ok(Topology::BarabasiAlbert {
            m: lookup("m", 3.0)? as usize,
        }),
        "er" => Ok(Topology::ErdosRenyi {
            p: lookup("p", 0.01)?,
        }),
        "ws" => Ok(Topology::WattsStrogatz {
            k: lookup("k", 6.0)? as usize,
            beta: lookup("beta", 0.1)?,
        }),
        "superpeer" => Ok(Topology::SuperPeer {
            n_super: lookup("n", 16.0)? as usize,
            super_degree: lookup("degree", 4.0)? as usize,
        }),
        other => Err(format!(
            "unknown topology `{other}` (valid: ba, er, ws, superpeer)"
        )),
    }
}

fn finalize(kind: PlanKind, draft: Draft, shared: &mut SharedTraces) -> Result<RunSpec, String> {
    match kind {
        PlanKind::TraceEval => {
            let trace = match draft.trace.as_str() {
                "paper-default" => TraceSource::PaperDefault {
                    pairs: draft.pairs,
                    seed: draft.seed,
                },
                "paper-static" => TraceSource::PaperStatic {
                    pairs: draft.pairs,
                    seed: draft.seed,
                },
                "shared-paper-default" => TraceSource::Shared {
                    label: "paper-default".to_string(),
                    seed: draft.seed,
                    pairs: shared.get(draft.pairs, draft.seed),
                },
                other => {
                    return Err(format!(
                        "unknown trace `{other}` (valid: paper-default, paper-static, \
                         shared-paper-default)"
                    ))
                }
            };
            Ok(RunSpec::TraceEval {
                trace,
                strategy: draft.strategy,
                block_size: draft.block,
                obs: draft.obs,
            })
        }
        PlanKind::LiveSim => {
            let mut cfg = SimConfig::default_with(draft.nodes, draft.queries, draft.seed);
            if let Some(ttl) = draft.ttl {
                cfg.ttl = ttl;
            }
            if let Some(interval) = draft.interval {
                cfg.mean_query_interval = Duration::from_ticks(interval);
            }
            if let Some(topology) = &draft.topology {
                cfg.topology =
                    parse_topology(topology).map_err(|m| format!("key `topology`: {m}"))?;
            }
            if let Some(topics) = draft.catalog_topics {
                cfg.catalog.topics = topics;
            }
            if let Some(files) = draft.catalog_files {
                cfg.catalog.files_per_topic = files;
            }
            if !draft.churn_none
                && (draft.churn_session.is_some() || draft.churn_downtime.is_some())
            {
                cfg.churn = Some(ChurnConfig {
                    mean_session: Duration::from_ticks(draft.churn_session.unwrap_or(2_000_000)),
                    mean_downtime: Duration::from_ticks(draft.churn_downtime.unwrap_or(600_000)),
                    pinned: vec![],
                });
            }
            if let Some(faults) = &draft.faults {
                cfg.faults =
                    Some(make_fault_plan(faults).map_err(|e| format!("key `faults`: {e}"))?);
            }
            if let Some(links) = &draft.links {
                cfg.links = Some(make_link_plan(links).map_err(|e| format!("key `links`: {e}"))?);
            }
            if let Some(retry) = &draft.retry {
                cfg.retry =
                    Some(make_retry_policy(retry).map_err(|e| format!("key `retry`: {e}"))?);
            }
            if let Some(adapt) = &draft.adapt {
                cfg.adapt = Some(make_adapt_plan(adapt).map_err(|e| format!("key `adapt`: {e}"))?);
            }
            Ok(RunSpec::LiveSim {
                cfg,
                policy: draft.policy,
                graph: None,
                obs: draft.obs,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace_plan(extra: &str) -> SweepPlan {
        let text = format!(
            "name = \"t\"\nkind = \"trace-eval\"\nseed = 3\n\n[base]\npairs = 12_000\n\
             block = 2000\nstrategy = \"sliding(s=10)\"\n{extra}"
        );
        SweepPlan::parse(&text, "plans/t.toml").unwrap()
    }

    #[test]
    fn a_plan_with_no_axes_is_a_single_base_job() {
        let jobs = expand(&tiny_trace_plan("")).unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(jobs[0].params.is_empty());
        assert_eq!(
            jobs[0].spec.describe(),
            "trace-eval|trace=paper-default(pairs=12000,seed=3)|strategy=sliding(s=10)|block=2000"
        );
    }

    #[test]
    fn grid_is_row_major_over_sorted_axes() {
        let plan = tiny_trace_plan(
            "\n[[axis]]\nkey = \"strategy.s\"\nvalues = [5, 10]\n\
             \n[[axis]]\nkey = \"block\"\nvalues = [1000, 2000, 3000]\n",
        );
        let jobs = expand(&plan).unwrap();
        // Sorted axes: block < strategy.s → block slowest.
        assert_eq!(jobs.len(), 6);
        let picks: Vec<(String, String)> = jobs
            .iter()
            .map(|j| (j.param("block").unwrap(), j.param("strategy.s").unwrap()))
            .collect();
        assert_eq!(
            picks,
            [
                ("1000", "5"),
                ("1000", "10"),
                ("2000", "5"),
                ("2000", "10"),
                ("3000", "5"),
                ("3000", "10")
            ]
            .map(|(a, b)| (a.to_string(), b.to_string()))
        );
        assert!(jobs[0].spec.describe().contains("strategy=sliding(s=5)"));
    }

    #[test]
    fn spec_param_patches_match_legacy_interpolation() {
        let plan = tiny_trace_plan("\n[[axis]]\nkey = \"strategy.c\"\nvalues = [0.0, 0.05]\n");
        let jobs = expand(&plan).unwrap();
        assert!(jobs[0].spec.describe().contains("sliding(s=10,c=0)"));
        assert!(jobs[1].spec.describe().contains("sliding(s=10,c=0.05)"));
    }

    #[test]
    fn shared_traces_are_synthesized_once() {
        let plan = tiny_trace_plan("trace = \"shared-paper-default\"\n\n[[axis]]\nkey = \"block\"\nvalues = [1000, 2000]\n");
        let jobs = expand(&plan).unwrap();
        let arcs: Vec<Arc<Vec<PairRecord>>> = jobs
            .iter()
            .map(|j| match &j.spec {
                RunSpec::TraceEval { trace, .. } => trace.materialize(),
                RunSpec::LiveSim { .. } => unreachable!(),
            })
            .collect();
        assert!(Arc::ptr_eq(&arcs[0], &arcs[1]));
        assert!(jobs[0]
            .spec
            .describe()
            .contains("shared(paper-default,pairs=12000,seed=3)"));
    }

    #[test]
    fn live_defaults_are_engine_defaults() {
        let plan = SweepPlan::parse(
            "name = \"l\"\nkind = \"live-sim\"\nseed = 5\n\n[base]\nnodes = 60\nqueries = 100\n",
            "plans/l.toml",
        )
        .unwrap();
        let jobs = expand(&plan).unwrap();
        let RunSpec::LiveSim { cfg, .. } = &jobs[0].spec else {
            panic!("live plan built a trace spec")
        };
        let default = SimConfig::default_with(60, 100, 5);
        assert_eq!(format!("{cfg:?}"), format!("{default:?}"));
    }

    #[test]
    fn live_knobs_apply() {
        let plan = SweepPlan::parse(
            "name = \"l\"\nkind = \"live-sim\"\nseed = 5\n\n[base]\nnodes = 60\nqueries = 100\n\
             ttl = 6\ninterval = 500\ncatalog.topics = 5\ncatalog.files = 40\n\
             churn.session = 2_000_000\nchurn.downtime = 600_000\n\
             retry = \"retry(deadline=2000,attempts=3,maxttl=8)\"\n\
             topology = \"superpeer(n=4,degree=4)\"\nfaults = \"faults(loss=0.05)\"\n",
            "plans/l.toml",
        )
        .unwrap();
        let jobs = expand(&plan).unwrap();
        let RunSpec::LiveSim { cfg, .. } = &jobs[0].spec else {
            panic!("live plan built a trace spec")
        };
        assert_eq!(cfg.ttl, 6);
        assert_eq!(cfg.mean_query_interval, Duration::from_ticks(500));
        assert_eq!(cfg.catalog.topics, 5);
        assert_eq!(cfg.catalog.files_per_topic, 40);
        assert!(matches!(
            cfg.topology,
            Topology::SuperPeer {
                n_super: 4,
                super_degree: 4
            }
        ));
        let churn = cfg.churn.as_ref().expect("churn configured");
        assert_eq!(churn.mean_session, Duration::from_ticks(2_000_000));
        assert_eq!(cfg.faults.as_ref().unwrap().loss, 0.05);
        assert_eq!(cfg.retry.as_ref().unwrap().max_attempts, 3);
    }

    #[test]
    fn adapt_knob_applies_and_none_clears_it() {
        let plan = SweepPlan::parse(
            "name = \"a\"\nkind = \"live-sim\"\n\n[base]\nnodes = 60\nqueries = 100\n\
             adapt = \"adapt(every=20000,budget=16,degree=3)\"\n\n\
             [[axis]]\nkey = \"adapt\"\nvalues = [\"none\", \"adapt(every=20000,budget=16,degree=3)\"]\n",
            "plans/a.toml",
        )
        .unwrap();
        let jobs = expand(&plan).unwrap();
        assert_eq!(jobs.len(), 2);
        let RunSpec::LiveSim { cfg, .. } = &jobs[0].spec else {
            unreachable!()
        };
        assert!(cfg.adapt.is_none());
        let RunSpec::LiveSim { cfg, .. } = &jobs[1].spec else {
            unreachable!()
        };
        let adapt = cfg.adapt.as_ref().expect("adapt configured");
        assert_eq!(adapt.every, Duration::from_ticks(20_000));
        assert_eq!(adapt.budget, 16);
        assert_eq!(adapt.degree, 3);
        // Parameter patches go through the spec grammar.
        let plan = SweepPlan::parse(
            "name = \"a\"\nkind = \"live-sim\"\n\n[base]\nnodes = 60\nqueries = 100\n\n\
             [[axis]]\nkey = \"adapt.budget\"\nvalues = [4, 8]\n",
            "plans/a.toml",
        )
        .unwrap();
        let jobs = expand(&plan).unwrap();
        let RunSpec::LiveSim { cfg, .. } = &jobs[0].spec else {
            unreachable!()
        };
        assert_eq!(cfg.adapt.as_ref().unwrap().budget, 4);
        // And a bad value surfaces with plan context.
        let plan = SweepPlan::parse(
            "name = \"a\"\nkind = \"live-sim\"\n\n[base]\nnodes = 60\nqueries = 100\n\
             adapt = \"adapt(every=0)\"\n",
            "plans/a.toml",
        )
        .unwrap();
        let e = expand(&plan).unwrap_err();
        assert!(e.to_string().contains("must be positive"), "{e}");
    }

    #[test]
    fn none_clears_optional_layers() {
        let plan = SweepPlan::parse(
            "name = \"l\"\nkind = \"live-sim\"\n\n[base]\nnodes = 60\nqueries = 100\n\
             churn.session = 1000\n\n[[axis]]\nkey = \"churn\"\nvalues = [\"none\"]\n\
             \n[[axis]]\nkey = \"faults\"\nvalues = [\"none\", \"faults(loss=0.1)\"]\n",
            "plans/l.toml",
        )
        .unwrap();
        let jobs = expand(&plan).unwrap();
        assert_eq!(jobs.len(), 2);
        for job in &jobs {
            let RunSpec::LiveSim { cfg, .. } = &job.spec else {
                unreachable!()
            };
            assert!(cfg.churn.is_none());
        }
        let RunSpec::LiveSim { cfg, .. } = &jobs[0].spec else {
            unreachable!()
        };
        assert!(cfg.faults.is_none());
    }

    #[test]
    fn bad_registry_specs_surface_with_plan_context() {
        let plan = tiny_trace_plan("\n[[axis]]\nkey = \"strategy\"\nvalues = [\"slidng\"]\n");
        let e = expand(&plan).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("plans/t.toml"), "{msg}");
        assert!(msg.contains("unknown strategy"), "{msg}");
        assert!(msg.contains("job #0"), "{msg}");
    }

    #[test]
    fn lhs_design_is_permutation_valid_and_plan_determined() {
        let text = "name = \"l\"\nkind = \"trace-eval\"\nseed = 9\nsampler = \"lhs\"\n\
                    samples = 8\n\n[base]\npairs = 8_000\nblock = 1000\n\n\
                    [[axis]]\nkey = \"strategy.s\"\nmin = 2\nmax = 50\n\n\
                    [[axis]]\nkey = \"block\"\nvalues = [500, 1000, 1500, 2000, 2500, 3000, 3500, 4000]\n";
        let plan = SweepPlan::parse(text, "plans/l.toml").unwrap();
        let jobs = expand(&plan).unwrap();
        assert_eq!(jobs.len(), 8);
        // Every block value appears exactly once; every support stratum
        // is hit exactly once.
        let mut blocks: Vec<String> = jobs.iter().map(|j| j.param("block").unwrap()).collect();
        blocks.sort();
        let mut expect: Vec<String> = (1..=8).map(|i| (i * 500).to_string()).collect();
        expect.sort();
        assert_eq!(blocks, expect);
        let mut strata: Vec<usize> = jobs
            .iter()
            .map(|j| {
                let s: f64 = j.param("strategy.s").unwrap().parse().unwrap();
                ((s - 2.0) / 48.0 * 8.0).floor() as usize
            })
            .collect();
        strata.sort_unstable();
        assert_eq!(strata, (0..8).collect::<Vec<_>>());
        // Re-expansion reproduces the design bit-for-bit.
        let again = expand(&SweepPlan::parse(text, "plans/l.toml").unwrap()).unwrap();
        for (a, b) in jobs.iter().zip(&again) {
            assert_eq!(a.spec.describe(), b.spec.describe());
        }
        // A different seed is a different design.
        let reseeded =
            SweepPlan::parse(&text.replace("seed = 9", "seed = 10"), "plans/l.toml").unwrap();
        let other = expand(&reseeded).unwrap();
        assert!(
            jobs.iter()
                .zip(&other)
                .any(|(a, b)| a.param("block") != b.param("block")),
            "reseeding left the design unchanged"
        );
    }

    #[test]
    fn grid_rejects_range_axes() {
        let plan = SweepPlan::parse(
            "name = \"g\"\nkind = \"trace-eval\"\n\n[[axis]]\nkey = \"strategy.s\"\n\
             min = 2\nmax = 50\n",
            "plans/g.toml",
        )
        .unwrap();
        let e = expand(&plan).unwrap_err();
        assert!(
            e.to_string().contains("requires `sampler = \"lhs\"`"),
            "{e}"
        );
    }

    #[test]
    fn explicit_jobs_expand_in_file_order() {
        let plan = SweepPlan::parse(
            "name = \"j\"\nkind = \"live-sim\"\n\n[base]\nnodes = 60\nqueries = 100\n\n\
             [[job]]\npolicy = \"flood\"\n\n[[job]]\npolicy = \"superpeer(n=4)\"\n\
             topology = \"superpeer(n=4,degree=4)\"\nttl = 8\n\n[[job]]\npolicy = \"assoc\"\n",
            "plans/j.toml",
        )
        .unwrap();
        let jobs = expand(&plan).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[1].param("policy").unwrap(), "superpeer(n=4)");
        let RunSpec::LiveSim { cfg, .. } = &jobs[1].spec else {
            unreachable!()
        };
        assert_eq!(cfg.ttl, 8);
        let RunSpec::LiveSim { cfg, .. } = &jobs[2].spec else {
            unreachable!()
        };
        assert_eq!(cfg.ttl, 5);
    }
}
