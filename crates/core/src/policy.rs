//! Online association-rule routing for the live simulator.
//!
//! This is the deployment the paper argues for: each node watches the
//! hits flowing back through it and learns `{upstream} → {via}`
//! associations; future queries arriving from a known upstream are
//! forwarded only to the top-k learned consequents instead of being
//! flooded. When no rule applies — unknown upstream, no consequent among
//! the live candidates — the node **falls back to flooding**, so "the
//! quality of the search results should not decrease dramatically"
//! (§III-B). Queries issued by the node itself are keyed by the node's
//! own identity, extending interest-based locality to the first hop.
//!
//! Rule maintenance uses decayed counts (the §VI streaming maintainer),
//! the variant with the strongest measured coverage/success; the decay
//! half-life and support threshold are configurable.

use arq_assoc::DecayedPairCounts;
use arq_gnutella::policy::{ForwardCtx, ForwardingPolicy, ShortcutProposal};
use arq_overlay::{Graph, NodeId};
use arq_simkern::Rng64;
use arq_trace::record::HostId;

fn host(n: NodeId) -> HostId {
    HostId(n.0)
}

/// Tunables for [`AssocPolicy`].
#[derive(Debug, Clone)]
pub struct AssocPolicyConfig {
    /// Forward to at most this many rule consequents.
    pub k: usize,
    /// Decayed support an association needs before it routes queries.
    pub min_support: f64,
    /// Minimum confidence — the consequent's share of all decayed
    /// observations for its antecedent — a rule needs before it routes
    /// queries. `0.0` disables the gate (support-only ranking, the
    /// pre-confidence behavior, bit for bit).
    pub min_confidence: f64,
    /// Half-life of association counts, in observed replies per node.
    pub half_life: f64,
    /// When `true`, pick the k consequents with the highest support; when
    /// `false`, pick k uniformly at random among qualifying consequents
    /// (the paper's §III-B.1 alternative, ablated in E10).
    pub top_by_support: bool,
    /// Multiply a rule's support by this factor whenever its consequent
    /// is observed dead — either absent from the live candidates at
    /// selection time or blamed for a query timeout. `1.0` disables
    /// demotion (plain rule-or-flood behavior); `0.0` evicts outright.
    pub demote: f64,
    /// Tumbling window of issuer query outcomes per node driving
    /// Adaptive-Sliding-Window-style re-mines: once a node accumulates
    /// this many outcomes, a miss fraction of at least `fail_threshold`
    /// discards its rule set so it re-learns from live traffic.
    /// `0` disables.
    pub fail_window: usize,
    /// Miss fraction within a full window that triggers the re-mine.
    pub fail_threshold: f64,
}

impl Default for AssocPolicyConfig {
    fn default() -> Self {
        AssocPolicyConfig {
            k: 2,
            min_support: 3.0,
            min_confidence: 0.0,
            half_life: 500.0,
            top_by_support: true,
            demote: 1.0,
            fail_window: 0,
            fail_threshold: 0.75,
        }
    }
}

impl AssocPolicyConfig {
    /// Whether any failure-adaptation mechanism is active.
    pub fn adaptive(&self) -> bool {
        self.demote < 1.0 || self.fail_window > 0
    }
}

/// Per-node learned rules + rule-or-flood forwarding.
#[derive(Debug)]
pub struct AssocPolicy {
    cfg: AssocPolicyConfig,
    /// One learner per node, created lazily.
    learners: Vec<Option<DecayedPairCounts>>,
    /// Per-node (successes, failures) in the current tumbling window.
    windows: Vec<(u32, u32)>,
    rule_forwards: u64,
    flood_fallbacks: u64,
    dead_demotions: u64,
    failure_remines: u64,
    pruned_consequents: u64,
}

impl AssocPolicy {
    /// Creates the policy.
    pub fn new(cfg: AssocPolicyConfig) -> Self {
        assert!(cfg.k >= 1, "k must be at least 1");
        assert!(cfg.min_support >= 1.0, "min_support below one observation");
        assert!(
            (0.0..=1.0).contains(&cfg.min_confidence),
            "min_confidence outside [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.demote),
            "demote factor outside [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.fail_threshold),
            "fail_threshold outside [0, 1]"
        );
        AssocPolicy {
            cfg,
            learners: Vec::new(),
            windows: Vec::new(),
            rule_forwards: 0,
            flood_fallbacks: 0,
            dead_demotions: 0,
            failure_remines: 0,
            pruned_consequents: 0,
        }
    }

    /// Decisions routed by rules so far.
    pub fn rule_forwards(&self) -> u64 {
        self.rule_forwards
    }

    /// Decisions that fell back to flooding.
    pub fn flood_fallbacks(&self) -> u64 {
        self.flood_fallbacks
    }

    /// Fraction of forwarding decisions that used rules.
    pub fn rule_usage(&self) -> f64 {
        let total = self.rule_forwards + self.flood_fallbacks;
        if total == 0 {
            0.0
        } else {
            self.rule_forwards as f64 / total as f64
        }
    }

    /// Rules demoted after their consequent was observed dead.
    pub fn dead_demotions(&self) -> u64 {
        self.dead_demotions
    }

    /// Rule sets discarded by the failure-window re-mine trigger.
    pub fn failure_remines(&self) -> u64 {
        self.failure_remines
    }

    /// Consequents that met the support gate but fell below the
    /// confidence gate at selection time.
    pub fn pruned_consequents(&self) -> u64 {
        self.pruned_consequents
    }

    fn learner(&mut self, node: NodeId) -> &mut DecayedPairCounts {
        let idx = node.index();
        if idx >= self.learners.len() {
            self.learners.resize_with(idx + 1, || None);
        }
        self.learners[idx].get_or_insert_with(|| DecayedPairCounts::new(self.cfg.half_life))
    }

    /// Folds one issuer-side query outcome into the node's tumbling
    /// window; a full window with too many misses discards the node's
    /// rule set, forcing a fresh mine from subsequent replies.
    fn note_outcome(&mut self, node: NodeId, success: bool) {
        if self.cfg.fail_window == 0 {
            return;
        }
        let idx = node.index();
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, (0, 0));
        }
        let w = &mut self.windows[idx];
        if success {
            w.0 += 1;
        } else {
            w.1 += 1;
        }
        if (w.0 + w.1) as usize >= self.cfg.fail_window {
            let miss = f64::from(w.1) / f64::from(w.0 + w.1);
            self.windows[idx] = (0, 0);
            if miss >= self.cfg.fail_threshold {
                if let Some(slot @ Some(_)) = self.learners.get_mut(idx) {
                    *slot = None;
                    self.failure_remines += 1;
                }
            }
        }
    }

    /// Warm-starts one node's learner from an offline-mined rule set —
    /// the deployment path the paper implies: a node that has been
    /// collecting traffic can mine its trace and install the rules
    /// before routing its first query, instead of flooding through a
    /// cold-start phase. Each rule's support count is injected as that
    /// many observations.
    pub fn seed_rules(&mut self, node: NodeId, rules: &arq_assoc::RuleSet) {
        let learner = self.learner(node);
        for (src, via, count) in rules.iter() {
            for _ in 0..count {
                learner.observe(src, via);
            }
        }
    }

    /// The learned consequents for (`node`, antecedent) — exposed for the
    /// topology-adaptation extension and diagnostics. Applies the same
    /// support and confidence gates as routing, so a shortcut stays
    /// alive exactly as long as its rule would still route queries.
    pub fn consequents(&self, node: NodeId, antecedent: HostId, k: usize) -> Vec<HostId> {
        match self.learners.get(node.index()).and_then(Option::as_ref) {
            Some(counts) => {
                counts.top_k_confident(antecedent, k, self.cfg.min_support, self.cfg.min_confidence)
            }
            None => Vec::new(),
        }
    }
}

impl ForwardingPolicy for AssocPolicy {
    fn name(&self) -> &'static str {
        if self.cfg.adaptive() {
            "assoc-adaptive"
        } else {
            "assoc"
        }
    }

    fn select(&mut self, ctx: &ForwardCtx<'_>, rng: &mut Rng64) -> Vec<NodeId> {
        let antecedent = host(ctx.from.unwrap_or(ctx.node));
        let k = self.cfg.k;
        let min_support = self.cfg.min_support;
        let min_confidence = self.cfg.min_confidence;
        let top_by_support = self.cfg.top_by_support;
        let demote = self.cfg.demote;
        let learner = self.learner(ctx.node);
        let confident =
            learner.top_k_confident(antecedent, usize::MAX, min_support, min_confidence);
        if min_confidence > 0.0 {
            // Count how many support-qualified rules the confidence gate
            // removed; with the gate off the two sets are identical and
            // the extra scan is skipped.
            let supported = learner.top_k(antecedent, usize::MAX, min_support).len();
            self.pruned_consequents += (supported - confident.len()) as u64;
        }
        let learner = self.learner(ctx.node);
        let all: Vec<NodeId> = confident.into_iter().map(|h| NodeId(h.0)).collect();
        // Qualifying consequents that are no longer live candidates are
        // observed dead; with demotion enabled, shrink them on the spot
        // so stale rules decay faster than their half-life alone allows.
        let mut demoted = 0;
        if demote < 1.0 {
            for n in all.iter().filter(|n| !ctx.candidates.contains(n)) {
                learner.penalize(antecedent, host(*n), demote);
                demoted += 1;
            }
        }
        self.dead_demotions += demoted;
        // Qualifying consequents that are actually live candidates.
        let mut qualifying: Vec<NodeId> = all
            .into_iter()
            .filter(|n| ctx.candidates.contains(n))
            .collect();
        if top_by_support {
            qualifying.truncate(k);
        } else {
            rng.shuffle(&mut qualifying);
            qualifying.truncate(k);
        }
        if qualifying.is_empty() {
            // No applicable rule: revert to flooding.
            self.flood_fallbacks += 1;
            ctx.candidates.to_vec()
        } else {
            self.rule_forwards += 1;
            qualifying
        }
    }

    fn on_reply(
        &mut self,
        node: NodeId,
        upstream: Option<NodeId>,
        via: NodeId,
        _key: arq_content::QueryKey,
    ) {
        let antecedent = host(upstream.unwrap_or(node));
        self.learner(node).observe(antecedent, host(via));
        if upstream.is_none() {
            // A hit reached the issuer: a success for its window.
            self.note_outcome(node, true);
        }
    }

    fn on_failure(&mut self, node: NodeId, target: NodeId) {
        if self.cfg.demote < 1.0 {
            let demote = self.cfg.demote;
            if let Some(Some(learner)) = self.learners.get_mut(node.index()) {
                learner.penalize(host(node), host(target), demote);
                self.dead_demotions += 1;
            }
        }
        self.note_outcome(node, false);
    }

    fn stats(&self) -> Vec<(String, f64)> {
        let mut stats = vec![
            ("rule_forwards".into(), self.rule_forwards as f64),
            ("flood_fallbacks".into(), self.flood_fallbacks as f64),
            ("rule_usage".into(), self.rule_usage()),
        ];
        if self.cfg.min_confidence > 0.0 {
            stats.push(("pruned_consequents".into(), self.pruned_consequents as f64));
        }
        if self.cfg.adaptive() {
            stats.push(("dead_demotions".into(), self.dead_demotions as f64));
            stats.push(("failure_remines".into(), self.failure_remines as f64));
        }
        stats
    }

    fn propose_shortcuts(&self, graph: &Graph) -> Vec<ShortcutProposal> {
        crate::topology::propose_shortcuts(graph, self)
            .into_iter()
            .map(|s| ShortcutProposal {
                asker: s.asker,
                target: s.target,
                via: s.via,
            })
            .collect()
    }

    fn shortcut_active(&self, asker: NodeId, target: NodeId, via: NodeId) -> bool {
        // The rule lives at the relay `via`, keyed by the asker: the
        // shortcut survives while `target` still ranks among the top-k
        // gated consequents `via` has learned for queries from `asker`.
        self.consequents(via, host(asker), self.cfg.k)
            .contains(&host(target))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_content::{FileId, QueryKey, Topic};
    use arq_gnutella::QueryMsg;
    use arq_trace::record::Guid;

    fn key() -> QueryKey {
        QueryKey {
            file: FileId(0),
            topic: Topic(0),
        }
    }

    fn msg() -> QueryMsg {
        QueryMsg {
            guid: Guid(1),
            key: key(),
            ttl: 4,
            hops: 1,
        }
    }

    fn teach(p: &mut AssocPolicy, node: NodeId, upstream: NodeId, via: NodeId, times: usize) {
        for _ in 0..times {
            p.on_reply(node, Some(upstream), via, key());
        }
    }

    #[test]
    fn floods_until_rules_form_then_routes() {
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 3.0,
            half_life: 1e9,
            top_by_support: true,
            ..Default::default()
        });
        let mut rng = Rng64::seed_from(1);
        let candidates = vec![NodeId(10), NodeId(11), NodeId(12)];
        let m = msg();
        let ctx = ForwardCtx {
            node: NodeId(5),
            from: Some(NodeId(2)),
            query: &m,
            candidates: &candidates,
        };
        // Cold: flood.
        assert_eq!(p.select(&ctx, &mut rng), candidates);
        assert_eq!(p.flood_fallbacks(), 1);
        // Two observations: still below support 3 -> flood.
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 2);
        assert_eq!(p.select(&ctx, &mut rng).len(), 3);
        // Third observation crosses the threshold -> rule routing.
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 1);
        assert_eq!(p.select(&ctx, &mut rng), vec![NodeId(11)]);
        assert_eq!(p.rule_forwards(), 1);
        assert!(p.rule_usage() > 0.0);
    }

    #[test]
    fn rules_are_per_node_and_per_antecedent() {
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 2.0,
            half_life: 1e9,
            top_by_support: true,
            ..Default::default()
        });
        let mut rng = Rng64::seed_from(2);
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 5);
        let candidates = vec![NodeId(10), NodeId(11)];
        let m = msg();
        // Same node, different upstream: no rule.
        let ctx = ForwardCtx {
            node: NodeId(5),
            from: Some(NodeId(3)),
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng).len(), 2);
        // Different node, same upstream: no rule.
        let ctx = ForwardCtx {
            node: NodeId(6),
            from: Some(NodeId(2)),
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng).len(), 2);
    }

    #[test]
    fn self_issued_queries_use_own_identity() {
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 2.0,
            half_life: 1e9,
            top_by_support: true,
            ..Default::default()
        });
        let mut rng = Rng64::seed_from(3);
        // Hits for queries the node issued itself (upstream None).
        for _ in 0..3 {
            p.on_reply(NodeId(5), None, NodeId(12), key());
        }
        let candidates = vec![NodeId(10), NodeId(12)];
        let m = msg();
        let ctx = ForwardCtx {
            node: NodeId(5),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng), vec![NodeId(12)]);
    }

    #[test]
    fn dead_consequents_fall_back_to_flooding() {
        let mut p = AssocPolicy::new(AssocPolicyConfig::default());
        let mut rng = Rng64::seed_from(4);
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 10);
        // Node 11 is no longer a live candidate.
        let candidates = vec![NodeId(10), NodeId(12)];
        let m = msg();
        let ctx = ForwardCtx {
            node: NodeId(5),
            from: Some(NodeId(2)),
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng), candidates);
    }

    #[test]
    fn top_by_support_prefers_strongest_route() {
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 2.0,
            half_life: 1e9,
            top_by_support: true,
            ..Default::default()
        });
        let mut rng = Rng64::seed_from(5);
        teach(&mut p, NodeId(5), NodeId(2), NodeId(10), 3);
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 8);
        let candidates = vec![NodeId(10), NodeId(11)];
        let m = msg();
        let ctx = ForwardCtx {
            node: NodeId(5),
            from: Some(NodeId(2)),
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng), vec![NodeId(11)]);
    }

    #[test]
    fn random_k_selects_among_qualifying() {
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 2.0,
            half_life: 1e9,
            top_by_support: false,
            ..Default::default()
        });
        let mut rng = Rng64::seed_from(6);
        teach(&mut p, NodeId(5), NodeId(2), NodeId(10), 5);
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 5);
        let candidates = vec![NodeId(10), NodeId(11)];
        let m = msg();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let ctx = ForwardCtx {
                node: NodeId(5),
                from: Some(NodeId(2)),
                query: &m,
                candidates: &candidates,
            };
            let sel = p.select(&ctx, &mut rng);
            assert_eq!(sel.len(), 1);
            seen.insert(sel[0]);
        }
        assert_eq!(seen.len(), 2, "random-k never varied its choice");
    }

    #[test]
    fn failure_feedback_demotes_rules_until_flooding_resumes() {
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 3.0,
            min_confidence: 0.0,
            half_life: 1e9,
            top_by_support: true,
            demote: 0.25,
            fail_window: 0,
            fail_threshold: 0.75,
        });
        assert_eq!(p.name(), "assoc-adaptive");
        let mut rng = Rng64::seed_from(7);
        // Node 5 learned (self -> 11) from its own issued queries.
        for _ in 0..8 {
            p.on_reply(NodeId(5), None, NodeId(11), key());
        }
        let candidates = vec![NodeId(10), NodeId(11)];
        let m = msg();
        let ctx = ForwardCtx {
            node: NodeId(5),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng), vec![NodeId(11)]);
        // Timeouts blame the consequent; support 8 * 0.25^2 < 3 kills it.
        p.on_failure(NodeId(5), NodeId(11));
        p.on_failure(NodeId(5), NodeId(11));
        assert!(p.dead_demotions() >= 2);
        assert_eq!(
            p.select(&ctx, &mut rng),
            candidates,
            "dead rule kept routing"
        );
    }

    #[test]
    fn select_demotes_consequents_missing_from_candidates() {
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 2.0,
            min_confidence: 0.0,
            half_life: 1e9,
            top_by_support: true,
            demote: 0.0, // observed-dead rules are evicted outright
            fail_window: 0,
            fail_threshold: 0.75,
        });
        let mut rng = Rng64::seed_from(8);
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 10);
        // Node 11 offline: selecting floods AND evicts the rule.
        let without_11 = vec![NodeId(10), NodeId(12)];
        let m = msg();
        let ctx = ForwardCtx {
            node: NodeId(5),
            from: Some(NodeId(2)),
            query: &m,
            candidates: &without_11,
        };
        assert_eq!(p.select(&ctx, &mut rng), without_11);
        assert_eq!(p.dead_demotions(), 1);
        // Node 11 comes back: the rule is gone, still flooding.
        let with_11 = vec![NodeId(10), NodeId(11)];
        let ctx = ForwardCtx {
            node: NodeId(5),
            from: Some(NodeId(2)),
            query: &m,
            candidates: &with_11,
        };
        assert_eq!(p.select(&ctx, &mut rng), with_11);
    }

    #[test]
    fn failure_window_triggers_remine() {
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 2.0,
            min_confidence: 0.0,
            half_life: 1e9,
            top_by_support: true,
            demote: 1.0,
            fail_window: 4,
            fail_threshold: 0.75,
        });
        assert_eq!(p.name(), "assoc-adaptive");
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 10);
        // Four straight timeouts fill node 5's window and discard its rules.
        for _ in 0..4 {
            p.on_failure(NodeId(5), NodeId(10));
        }
        assert_eq!(p.failure_remines(), 1);
        assert!(p.consequents(NodeId(5), HostId(2), 3).is_empty());
        // Fresh replies rebuild the rule set (the re-mine).
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 3);
        assert_eq!(p.consequents(NodeId(5), HostId(2), 3), vec![HostId(11)]);
    }

    #[test]
    fn successes_keep_windows_from_triggering() {
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 2.0,
            min_confidence: 0.0,
            half_life: 1e9,
            top_by_support: true,
            demote: 1.0,
            fail_window: 4,
            fail_threshold: 0.75,
        });
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 10);
        // Half misses < 0.75 threshold: rules survive the window tumble.
        for _ in 0..2 {
            p.on_failure(NodeId(5), NodeId(10));
            p.on_reply(NodeId(5), None, NodeId(11), key());
        }
        assert_eq!(p.failure_remines(), 0);
        assert_eq!(p.consequents(NodeId(5), HostId(2), 3), vec![HostId(11)]);
    }

    #[test]
    fn plain_config_ignores_failure_feedback() {
        let mut p = AssocPolicy::new(AssocPolicyConfig::default());
        assert_eq!(p.name(), "assoc");
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 10);
        for _ in 0..20 {
            p.on_failure(NodeId(5), NodeId(11));
        }
        assert_eq!(p.dead_demotions(), 0);
        assert_eq!(p.failure_remines(), 0);
        assert_eq!(p.consequents(NodeId(5), HostId(2), 3), vec![HostId(11)]);
        // And no adaptive stats leak into artifacts for plain assoc.
        assert!(p.stats().iter().all(|(k, _)| k != "dead_demotions"));
    }

    #[test]
    fn consequents_accessor() {
        let mut p = AssocPolicy::new(AssocPolicyConfig::default());
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 10);
        assert_eq!(p.consequents(NodeId(5), HostId(2), 3), vec![HostId(11)]);
        assert!(p.consequents(NodeId(9), HostId(2), 3).is_empty());
    }

    #[test]
    fn minconf_prunes_low_confidence_rules_and_counts_them() {
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 2,
            min_support: 2.0,
            min_confidence: 0.6,
            half_life: 1e9,
            top_by_support: true,
            ..Default::default()
        });
        let mut rng = Rng64::seed_from(9);
        // 8 of 11 observations go to node 11 (confidence ~0.73), 3 of 11
        // to node 10 (~0.27): both pass the support gate, only 11 passes
        // the confidence gate.
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 8);
        teach(&mut p, NodeId(5), NodeId(2), NodeId(10), 3);
        let candidates = vec![NodeId(10), NodeId(11), NodeId(12)];
        let m = msg();
        let ctx = ForwardCtx {
            node: NodeId(5),
            from: Some(NodeId(2)),
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng), vec![NodeId(11)]);
        assert_eq!(p.pruned_consequents(), 1);
        // The accessor applies the same gate.
        assert_eq!(p.consequents(NodeId(5), HostId(2), 3), vec![HostId(11)]);
        // And the counter reaches stats only when the gate is on.
        assert!(p
            .stats()
            .iter()
            .any(|(k, v)| k == "pruned_consequents" && *v == 1.0));
    }

    #[test]
    fn zero_minconf_reports_no_pruning_stat() {
        let mut p = AssocPolicy::new(AssocPolicyConfig::default());
        let mut rng = Rng64::seed_from(10);
        teach(&mut p, NodeId(5), NodeId(2), NodeId(11), 6);
        teach(&mut p, NodeId(5), NodeId(2), NodeId(10), 4);
        let candidates = vec![NodeId(10), NodeId(11)];
        let m = msg();
        let ctx = ForwardCtx {
            node: NodeId(5),
            from: Some(NodeId(2)),
            query: &m,
            candidates: &candidates,
        };
        p.select(&ctx, &mut rng);
        assert_eq!(p.pruned_consequents(), 0);
        assert!(p.stats().iter().all(|(k, _)| k != "pruned_consequents"));
    }

    #[test]
    #[should_panic(expected = "min_confidence outside [0, 1]")]
    fn out_of_range_minconf_is_rejected() {
        AssocPolicy::new(AssocPolicyConfig {
            min_confidence: 1.5,
            ..Default::default()
        });
    }

    #[test]
    fn shortcut_hooks_track_rule_life() {
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 3.0,
            min_confidence: 0.0,
            half_life: 1e9,
            top_by_support: true,
            ..Default::default()
        });
        // Relay 7 learns {2} -> {11}: the shortcut 2 -- 11 via 7 is live.
        teach(&mut p, NodeId(7), NodeId(2), NodeId(11), 5);
        assert!(p.shortcut_active(NodeId(2), NodeId(11), NodeId(7)));
        // Not for other targets, relays, or askers.
        assert!(!p.shortcut_active(NodeId(2), NodeId(10), NodeId(7)));
        assert!(!p.shortcut_active(NodeId(2), NodeId(11), NodeId(8)));
        assert!(!p.shortcut_active(NodeId(3), NodeId(11), NodeId(7)));
    }

    #[test]
    fn proposals_come_from_learned_rules() {
        use arq_overlay::Graph;
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 3.0,
            min_confidence: 0.0,
            half_life: 1e9,
            top_by_support: true,
            ..Default::default()
        });
        // Path 2 -- 7 -- 11; relay 7 learns {2} -> {11}.
        let mut g = Graph::new(12);
        g.add_edge(NodeId(2), NodeId(7));
        g.add_edge(NodeId(7), NodeId(11));
        teach(&mut p, NodeId(7), NodeId(2), NodeId(11), 5);
        let props = p.propose_shortcuts(&g);
        assert_eq!(props.len(), 1);
        assert_eq!(props[0].asker, NodeId(2));
        assert_eq!(props[0].target, NodeId(11));
        assert_eq!(props[0].via, NodeId(7));
        // Once the edge exists, it is no longer proposed.
        g.add_edge(NodeId(2), NodeId(11));
        assert!(p.propose_shortcuts(&g).is_empty());
    }
}

#[cfg(test)]
mod seed_tests {
    use super::*;
    use arq_assoc::mine_pairs;
    use arq_content::{FileId, QueryKey, Topic};
    use arq_gnutella::policy::{ForwardCtx, ForwardingPolicy};
    use arq_gnutella::QueryMsg;
    use arq_simkern::SimTime;
    use arq_trace::record::{Guid, PairRecord, QueryId};

    #[test]
    fn seeded_policy_routes_from_the_first_query() {
        // Mine rules offline from a collected trace…
        let trace: Vec<PairRecord> = (0..20)
            .map(|i| PairRecord {
                time: SimTime::from_ticks(i),
                guid: Guid(u128::from(i)),
                src: HostId(2),
                via: HostId(11),
                responder: HostId(0),
                query: QueryId(0),
            })
            .collect();
        let rules = mine_pairs(&trace, 5);
        // …and install them on node 5.
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 5.0,
            half_life: 1e9,
            top_by_support: true,
            ..Default::default()
        });
        p.seed_rules(NodeId(5), &rules);
        let candidates = vec![NodeId(10), NodeId(11)];
        let m = QueryMsg {
            guid: Guid(99),
            key: QueryKey {
                file: FileId(0),
                topic: Topic(0),
            },
            ttl: 4,
            hops: 1,
        };
        let ctx = ForwardCtx {
            node: NodeId(5),
            from: Some(NodeId(2)),
            query: &m,
            candidates: &candidates,
        };
        let mut rng = Rng64::seed_from(1);
        // No cold-start flood: the very first decision uses the rule.
        assert_eq!(p.select(&ctx, &mut rng), vec![NodeId(11)]);
        assert_eq!(p.flood_fallbacks(), 0);
        // Other nodes remain cold.
        let ctx = ForwardCtx {
            node: NodeId(6),
            from: Some(NodeId(2)),
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng).len(), 2);
    }
}
