//! # arq-core — adaptively routing P2P queries using association analysis
//!
//! The primary contribution of Connelly et al. (ICPP 2006), reimplemented
//! as a library. Two deployment surfaces:
//!
//! **Trace-driven evaluation** (how the paper validates the idea): a
//! [`strategy::Strategy`] maintains a rule set over a stream of
//! query–reply blocks and is scored by coverage α and success ρ per
//! block. Five maintainers are provided:
//!
//! * [`strategy::StaticRuleset`] — mine once, use forever (§III-B.3);
//! * [`strategy::SlidingWindow`] — re-mine from the previous block before
//!   every trial (§III-B.4);
//! * [`strategy::LazySlidingWindow`] — re-mine every *P* blocks
//!   (§III-B.5);
//! * [`strategy::AdaptiveSlidingWindow`] — re-mine only when measured
//!   coverage or success falls below adaptive thresholds (§III-B.6);
//! * [`strategy::IncrementalStream`] — the §VI future-work streaming
//!   maintainer: decayed counts updated on every pair.
//!
//! [`eval::evaluate`] drives any strategy over a pair stream and returns
//! the per-trial series plus run summaries — the exact data behind the
//! paper's Figures 1–4.
//!
//! **Online routing** (what the idea is *for*): [`policy::AssocPolicy`]
//! implements `arq-gnutella`'s `ForwardingPolicy`, learning associations
//! from the hits flowing through each node and forwarding queries to the
//! top-k rule consequents instead of all neighbors, falling back to
//! flooding when no rule applies. The §VI extensions are implemented as
//! well: [`strategy::TopicSlidingWindow`] adds the query-topic dimension
//! to rule antecedents, [`hybrid::HybridPolicy`] chains interest-based
//! shortcuts with rule routing before flooding, and [`topology`]
//! rewires the overlay from learned rules.

#![warn(missing_docs)]

pub mod engine;
pub mod eval;
pub mod hybrid;
pub mod online;
pub mod policy;
pub mod strategy;
pub mod sweep;
pub mod threshold;
pub mod topology;

pub use engine::{RunArtifact, RunSpec, TraceSource};
pub use eval::{evaluate, evaluate_pipelined, evaluate_timed, evaluate_with_obs, EvalRun, Trial};
pub use hybrid::HybridPolicy;
pub use online::{RouteDecision, RuleHandle};
pub use policy::{AssocPolicy, AssocPolicyConfig};
pub use strategy::{
    AdaptiveSlidingWindow, BlockMiner, IncrementalStream, LazySlidingWindow, LossyStream,
    SlidingWindow, StaticRuleset, Strategy, TopicSlidingWindow,
};
pub use sweep::{SweepJob, SweepPlan};
pub use threshold::ThresholdCalc;
