//! Topology adaptation from learned rules (§VI future work).
//!
//! "Instead of forwarding query messages to a neighbor, which will in
//! turn forward the message on to one of its neighbors, a node could ask
//! its neighbors to which node they would forward queries from it. Once
//! the node has this information, it could attempt to make this third
//! node a new neighbor, which would result in queries being forwarded in
//! the future requiring one less hop."
//!
//! Implementation: node `v` holds a learned rule `{u} → {w}` (queries
//! from neighbor `u` are routed onward to `w`). When asked, `v` tells `u`
//! about `w`, and `u` adds the edge `u–w`, collapsing the two-hop path
//! `u→v→w` to one hop. Experiment E11 measures the hop-count reduction.

use crate::policy::AssocPolicy;
use arq_overlay::{Graph, NodeId};
use arq_trace::record::HostId;

/// A proposed shortcut edge: `asker` should connect to `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shortcut {
    /// The node gaining the edge (the rule's antecedent host).
    pub asker: NodeId,
    /// The new neighbor (the rule's consequent host).
    pub target: NodeId,
    /// The relay currently sitting between them.
    pub via: NodeId,
}

/// Collects shortcut proposals from every node's learned rules.
///
/// For each relay node `v` and each of its live neighbors `u`, `v`'s top
/// consequent `w` for antecedent `u` becomes the proposal `u → w`,
/// skipped when it would be a self-loop or the edge already exists.
pub fn propose_shortcuts(graph: &Graph, policy: &AssocPolicy) -> Vec<Shortcut> {
    let mut proposals = Vec::new();
    for v in graph.live_nodes() {
        for u in graph.live_neighbors(v) {
            for w_host in policy.consequents(v, HostId(u.0), 1) {
                let w = NodeId(w_host.0);
                if w == u || w == v {
                    continue;
                }
                if !graph.is_alive(w) || graph.has_edge(u, w) {
                    continue;
                }
                proposals.push(Shortcut {
                    asker: u,
                    target: w,
                    via: v,
                });
            }
        }
    }
    // Deterministic order; dedup identical (asker, target) pairs that
    // arrived via different relays.
    proposals.sort_by_key(|s| (s.asker, s.target, s.via));
    proposals.dedup_by_key(|s| (s.asker, s.target));
    proposals
}

/// Applies up to `budget` proposals (in order) as real edges. Returns how
/// many edges were added.
pub fn apply_shortcuts(graph: &mut Graph, proposals: &[Shortcut], budget: usize) -> usize {
    let mut added = 0;
    for s in proposals.iter().take(budget) {
        if graph.is_alive(s.asker) && graph.is_alive(s.target) && graph.add_edge(s.asker, s.target)
        {
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AssocPolicyConfig;
    use arq_content::{FileId, QueryKey, Topic};
    use arq_gnutella::policy::ForwardingPolicy;

    fn key() -> QueryKey {
        QueryKey {
            file: FileId(0),
            topic: Topic(0),
        }
    }

    /// Path graph 0 - 1 - 2; node 1 learns {0} -> {2}.
    fn setup() -> (Graph, AssocPolicy) {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 2.0,
            half_life: 1e9,
            top_by_support: true,
            ..Default::default()
        });
        for _ in 0..5 {
            p.on_reply(NodeId(1), Some(NodeId(0)), NodeId(2), key());
        }
        (g, p)
    }

    #[test]
    fn proposes_the_two_hop_collapse() {
        let (g, p) = setup();
        let props = propose_shortcuts(&g, &p);
        assert_eq!(
            props,
            vec![Shortcut {
                asker: NodeId(0),
                target: NodeId(2),
                via: NodeId(1)
            }]
        );
    }

    #[test]
    fn applying_shortcuts_shortens_paths() {
        let (mut g, p) = setup();
        let before = arq_overlay::algo::bfs_distances(&g, NodeId(0))[2];
        assert_eq!(before, 2);
        let props = propose_shortcuts(&g, &p);
        assert_eq!(apply_shortcuts(&mut g, &props, 10), 1);
        let after = arq_overlay::algo::bfs_distances(&g, NodeId(0))[2];
        assert_eq!(after, 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn existing_edges_and_self_loops_not_proposed() {
        let (mut g, p) = setup();
        g.add_edge(NodeId(0), NodeId(2));
        assert!(propose_shortcuts(&g, &p).is_empty());
    }

    #[test]
    fn dead_targets_not_proposed() {
        let (mut g, p) = setup();
        g.depart(NodeId(2));
        assert!(propose_shortcuts(&g, &p).is_empty());
    }

    #[test]
    fn budget_limits_application() {
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(1), NodeId(4));
        let mut p = AssocPolicy::new(AssocPolicyConfig {
            k: 1,
            min_support: 2.0,
            half_life: 1e9,
            top_by_support: true,
            ..Default::default()
        });
        // Node 1 learns a distinct route for each of three upstreams.
        for _ in 0..5 {
            p.on_reply(NodeId(1), Some(NodeId(0)), NodeId(2), key());
            p.on_reply(NodeId(1), Some(NodeId(3)), NodeId(4), key());
            p.on_reply(NodeId(1), Some(NodeId(4)), NodeId(0), key());
        }
        let props = propose_shortcuts(&g, &p);
        assert!(props.len() >= 2);
        let added = apply_shortcuts(&mut g, &props, 1);
        assert_eq!(added, 1);
    }
}
