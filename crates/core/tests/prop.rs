// Property tests require the external `proptest` crate; the feature is
// default-off so offline builds skip this file entirely.
#![cfg(feature = "proptest")]

//! Property-based tests for the strategies and evaluator.

use arq_core::strategy::Strategy as MaintenanceStrategy;
use arq_core::{
    evaluate, AdaptiveSlidingWindow, IncrementalStream, LazySlidingWindow, SlidingWindow,
    StaticRuleset, ThresholdCalc,
};
use arq_simkern::SimTime;
use arq_trace::record::{Guid, HostId, PairRecord, QueryId};
use proptest::prelude::*;

/// Arbitrary multi-block pair stream over small host populations (so
/// rules actually form).
fn arb_stream() -> impl Strategy<Value = Vec<PairRecord>> {
    proptest::collection::vec((0u32..6, 0u32..6), 60..400).prop_map(|hosts| {
        hosts
            .into_iter()
            .enumerate()
            .map(|(i, (s, v))| PairRecord {
                time: SimTime::from_ticks(i as u64),
                guid: Guid(i as u128),
                src: HostId(s),
                via: HostId(50 + v),
                responder: HostId(0),
                query: QueryId(0),
            })
            .collect()
    })
}

fn all_strategies() -> Vec<Box<dyn MaintenanceStrategy>> {
    vec![
        Box::new(StaticRuleset::new(2)),
        Box::new(SlidingWindow::new(2)),
        Box::new(SlidingWindow::with_confidence(2, 0.2)),
        Box::new(LazySlidingWindow::new(2, 3)),
        Box::new(AdaptiveSlidingWindow::new(2, 5, 0.7)),
        Box::new(AdaptiveSlidingWindow::with_thresholds(
            2,
            ThresholdCalc::ewma(0.3, 0.7),
            ThresholdCalc::ewma(0.3, 0.7),
        )),
        Box::new(IncrementalStream::new(2.0, 100.0)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every strategy produces bounded measures on every trial, one trial
    /// per non-warm-up block, with s ≤ n ≤ N = block unique queries.
    #[test]
    fn strategies_produce_bounded_measures(stream in arb_stream(), block in 20usize..60) {
        prop_assume!(stream.len() / block >= 2);
        for mut s in all_strategies() {
            let run = evaluate(s.as_mut(), &stream, block);
            prop_assert_eq!(run.trials, stream.len() / block - 1);
            for (c, su) in run.coverage.ys().iter().zip(run.success.ys()) {
                prop_assert!((0.0..=1.0).contains(c), "{} coverage {c}", run.strategy);
                prop_assert!((0.0..=1.0).contains(su), "{} success {su}", run.strategy);
            }
            prop_assert!(run.regenerations <= run.trials);
        }
    }

    /// Evaluation is a pure function of its inputs.
    #[test]
    fn evaluation_is_deterministic(stream in arb_stream()) {
        let block = 40;
        prop_assume!(stream.len() / block >= 2);
        let a = evaluate(&mut AdaptiveSlidingWindow::new(2, 5, 0.7), &stream, block);
        let b = evaluate(&mut AdaptiveSlidingWindow::new(2, 5, 0.7), &stream, block);
        prop_assert_eq!(a.coverage.ys(), b.coverage.ys());
        prop_assert_eq!(a.success.ys(), b.success.ys());
        prop_assert_eq!(a.regenerations, b.regenerations);
    }

    /// On a perfectly stationary stream (each source has one fixed route),
    /// every strategy except possibly the confidence-pruned one scores
    /// perfect coverage and success on every trial.
    #[test]
    fn stationary_streams_are_easy(n_src in 1u32..6, blocks in 2usize..8) {
        let block = 50usize;
        let stream: Vec<PairRecord> = (0..blocks * block)
            .map(|i| PairRecord {
                time: SimTime::from_ticks(i as u64),
                guid: Guid(i as u128),
                src: HostId(i as u32 % n_src),
                via: HostId(100 + i as u32 % n_src),
                responder: HostId(0),
                query: QueryId(0),
            })
            .collect();
        for mut s in all_strategies() {
            let run = evaluate(s.as_mut(), &stream, block);
            prop_assert!(
                run.avg_coverage > 0.999,
                "{} coverage {}",
                run.strategy,
                run.avg_coverage
            );
            prop_assert!(
                run.avg_success > 0.999,
                "{} success {}",
                run.strategy,
                run.avg_success
            );
        }
    }

    /// Lazy with period 1 must equal sliding trial-for-trial.
    #[test]
    fn lazy_period_one_equals_sliding(stream in arb_stream(), block in 20usize..60) {
        prop_assume!(stream.len() / block >= 2);
        let a = evaluate(&mut LazySlidingWindow::new(2, 1), &stream, block);
        let b = evaluate(&mut SlidingWindow::new(2), &stream, block);
        prop_assert_eq!(a.coverage.ys(), b.coverage.ys());
        prop_assert_eq!(a.success.ys(), b.success.ys());
    }

    /// Threshold calculators always return values inside the observed
    /// range (plus the initial value before history exists).
    #[test]
    fn thresholds_within_observed_range(
        values in proptest::collection::vec(0.0f64..1.0, 1..50),
        n in 1usize..20,
    ) {
        let mut t = ThresholdCalc::mean_of_last(n, 0.7);
        for &v in &values {
            t.push(v);
            let min = values.iter().cloned().fold(f64::MAX, f64::min);
            let max = values.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(t.value() >= min - 1e-12 && t.value() <= max + 1e-12);
        }
    }
}
