//! Hand-rolled property tests for the sweep planner: determinism and
//! ordering invariants checked over many generated plans, with no
//! external property-testing crate (the workspace builds offline).
//!
//! The generators draw plan shapes from a seeded [`Rng64`] stream, so
//! every case is reproducible from the printed case seed.

use arq_core::sweep::{self, SweepPlan, Value};
use arq_simkern::rng::Rng64;

/// The full observable expansion of a plan: every job's params and spec
/// describe string, in order. Two plans expand identically iff these
/// strings are equal.
fn expansion_fingerprint(plan: &SweepPlan) -> Vec<String> {
    sweep::expand(plan)
        .expect("generated plan expands")
        .iter()
        .map(|j| {
            let params: Vec<String> = j
                .params
                .iter()
                .map(|(k, v)| format!("{k}={}", v.render()))
                .collect();
            format!("#{} [{}] {}", j.index, params.join(","), j.spec.describe())
        })
        .collect()
}

/// Renders a grid plan over the given axes, with the `[[axis]]` blocks
/// in the order supplied.
fn grid_plan_text(axes: &[(&str, &[i64])]) -> String {
    let mut text = String::from(
        "name = \"prop\"\nkind = \"trace-eval\"\nseed = 11\n\n[base]\npairs = 12_000\n\
         block = 2000\nstrategy = \"sliding(s=10)\"\n",
    );
    for (key, values) in axes {
        let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        text.push_str(&format!(
            "\n[[axis]]\nkey = \"{key}\"\nvalues = [{}]\n",
            vals.join(", ")
        ));
    }
    text
}

/// Grid expansion is a pure function of the plan: re-parsing and
/// re-expanding the same text always yields the same job list, and the
/// job list never depends on the order of `[[axis]]` blocks in the file.
#[test]
fn grid_expansion_is_deterministic_and_axis_order_invariant() {
    let mut rng = Rng64::seed_from(0xA5EED);
    for case in 0..50u32 {
        // Draw 1..=3 axes from a small vocabulary, in random file order.
        let vocabulary: [(&str, &[i64]); 3] = [
            ("block", &[1_000, 2_000, 3_000]),
            ("strategy.s", &[5, 10]),
            ("strategy.c", &[0, 1]),
        ];
        let n_axes = 1 + (rng.next_u64() % 3) as usize;
        let mut order: Vec<usize> = (0..3).collect();
        // Fisher–Yates on the vocabulary order.
        for i in (1..order.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let picked: Vec<(&str, &[i64])> = order[..n_axes].iter().map(|&i| vocabulary[i]).collect();
        let mut reversed = picked.clone();
        reversed.reverse();

        let a = SweepPlan::parse(&grid_plan_text(&picked), "plans/prop.toml").unwrap();
        let b = SweepPlan::parse(&grid_plan_text(&picked), "plans/prop.toml").unwrap();
        let c = SweepPlan::parse(&grid_plan_text(&reversed), "plans/prop.toml").unwrap();

        let fa = expansion_fingerprint(&a);
        assert_eq!(
            fa,
            expansion_fingerprint(&b),
            "case {case}: re-expansion diverged"
        );
        assert_eq!(
            fa,
            expansion_fingerprint(&c),
            "case {case}: axis file order changed the job list"
        );
        assert_eq!(
            a.hash(),
            c.hash(),
            "case {case}: axis file order changed the plan hash"
        );
        // Every grid point appears exactly once.
        let expect: usize = picked.iter().map(|(_, v)| v.len()).product();
        assert_eq!(fa.len(), expect, "case {case}: wrong grid size");
        let mut dedup = fa.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), expect, "case {case}: duplicate grid point");
    }
}

fn lhs_plan_text(seed: u64, samples: usize) -> String {
    // One continuous range axis (the float-valued confidence pruning
    // parameter) and one discrete axis with exactly `samples` points.
    let blocks: Vec<String> = (1..=samples).map(|i| (i * 500).to_string()).collect();
    format!(
        "name = \"prop-lhs\"\nkind = \"trace-eval\"\nseed = {seed}\nsampler = \"lhs\"\n\
         samples = {samples}\n\n[base]\npairs = 12_000\nblock = 2000\n\n\
         [[axis]]\nkey = \"strategy.c\"\nmin = 0\nmax = 0.5\n\n\
         [[axis]]\nkey = \"block\"\nvalues = [{}]\n",
        blocks.join(", ")
    )
}

/// Latin-hypercube designs are permutation-valid (every axis visits
/// every stratum exactly once) and fully determined by `(plan hash,
/// seed)`: same text → same design, different seed → different design
/// (for at least one of the probed seeds).
#[test]
fn lhs_designs_are_permutation_valid_and_seed_determined() {
    let mut any_seed_changed_design = false;
    let mut previous: Option<Vec<String>> = None;
    for seed in 1..=20u64 {
        for samples in [3usize, 5, 8] {
            let text = lhs_plan_text(seed, samples);
            let plan = SweepPlan::parse(&text, "plans/prop-lhs.toml").unwrap();
            let jobs = sweep::expand(&plan).unwrap();
            assert_eq!(jobs.len(), samples);
            // Range axis: every stratum of [0, 0.5) hit exactly once.
            let mut strata: Vec<usize> = jobs
                .iter()
                .map(|j| {
                    let v: f64 = j.param("strategy.c").unwrap().parse().unwrap();
                    ((v / 0.5) * samples as f64).floor() as usize
                })
                .collect();
            strata.sort_unstable();
            assert_eq!(
                strata,
                (0..samples).collect::<Vec<_>>(),
                "seed {seed} samples {samples}: axis strategy.c is not a permutation"
            );
            // Discrete axis: every declared value used exactly once.
            let mut blocks: Vec<usize> = jobs
                .iter()
                .map(|j| j.param("block").unwrap().parse::<usize>().unwrap() / 500)
                .collect();
            blocks.sort_unstable();
            assert_eq!(
                blocks,
                (1..=samples).collect::<Vec<_>>(),
                "seed {seed} samples {samples}: axis block is not a permutation"
            );
            // Same text, fresh parse → identical design.
            let again = SweepPlan::parse(&text, "plans/prop-lhs.toml").unwrap();
            assert_eq!(
                expansion_fingerprint(&plan),
                expansion_fingerprint(&again),
                "seed {seed} samples {samples}: re-expansion diverged"
            );
            if samples == 8 {
                let fp = expansion_fingerprint(&plan);
                if let Some(prev) = &previous {
                    if *prev != fp {
                        any_seed_changed_design = true;
                    }
                }
                previous = Some(fp);
            }
        }
    }
    assert!(
        any_seed_changed_design,
        "twenty consecutive seeds produced identical LHS designs"
    );
}

/// The journaled sweep runner is byte-deterministic in the worker
/// count: the same plan run at 1, 2, and 8 threads produces identical
/// `report.json` and `runbook.json` bytes.
#[test]
fn sweep_reports_are_thread_count_invariant() {
    let plan = SweepPlan::parse(
        &grid_plan_text(&[("strategy.s", &[3, 5, 10])]),
        "plans/prop.toml",
    )
    .unwrap();
    let jobs = sweep::expand(&plan).unwrap();
    let mut reference: Option<(String, String)> = None;
    for threads in [1usize, 2, 8] {
        let dir =
            std::env::temp_dir().join(format!("arq-sweep-prop-{}-{threads}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let outcome = sweep::run_sweep(&plan, &jobs, &dir, false, 0, threads).unwrap();
        let pair = (outcome.report.to_string(), outcome.runbook.to_string());
        std::fs::remove_dir_all(&dir).ok();
        match &reference {
            None => reference = Some(pair),
            Some(r) => {
                assert_eq!(r.0, pair.0, "report bytes changed at {threads} threads");
                assert_eq!(r.1, pair.1, "runbook bytes changed at {threads} threads");
            }
        }
    }
}

/// Base overrides through the plan API behave like editing the file:
/// `set_base` feeds the same expansion as a plan parsed with that value,
/// and `set_axis_values` replaces an axis's points wholesale.
#[test]
fn plan_api_overrides_match_textual_edits() {
    let text = grid_plan_text(&[("strategy.s", &[5, 10])]);
    let mut via_api = SweepPlan::parse(&text, "plans/prop.toml").unwrap();
    via_api.set_base("pairs", 8_000usize).unwrap();
    via_api
        .set_axis_values(
            "strategy.s",
            vec![vec![Value::from(7.0)], vec![Value::from(9.0)]],
        )
        .unwrap();
    let edited =
        grid_plan_text(&[("strategy.s", &[7, 9])]).replace("pairs = 12_000", "pairs = 8_000");
    let via_text = SweepPlan::parse(&edited, "plans/prop.toml").unwrap();
    assert_eq!(
        expansion_fingerprint(&via_api),
        expansion_fingerprint(&via_text)
    );
    assert_eq!(via_api.hash(), via_text.hash());
}
