//! Descriptive trace statistics.
//!
//! Used to sanity-check synthetic traces against the gross properties the
//! paper reports for the real capture (answer ratio, host cardinalities,
//! pairs per host) and by the examples to describe whatever trace they
//! are processing.

use crate::record::{HostId, PairRecord, QueryRecord, ReplyRecord};
use std::collections::{HashMap, HashSet};

/// Gross statistics of a raw trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RawStats {
    /// Number of query records.
    pub queries: usize,
    /// Number of reply records.
    pub replies: usize,
    /// Replies per query (the paper's capture: 3.25M / 10.5M ≈ 0.31).
    pub answer_ratio: f64,
    /// Distinct hosts that forwarded queries.
    pub distinct_query_hosts: usize,
    /// Distinct GUIDs among queries.
    pub distinct_guids: usize,
}

/// Computes [`RawStats`].
pub fn raw_stats(queries: &[QueryRecord], replies: &[ReplyRecord]) -> RawStats {
    let hosts: HashSet<HostId> = queries.iter().map(|q| q.from).collect();
    let guids: HashSet<_> = queries.iter().map(|q| q.guid).collect();
    RawStats {
        queries: queries.len(),
        replies: replies.len(),
        answer_ratio: if queries.is_empty() {
            0.0
        } else {
            replies.len() as f64 / queries.len() as f64
        },
        distinct_query_hosts: hosts.len(),
        distinct_guids: guids.len(),
    }
}

/// Gross statistics of a joined pair stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PairStats {
    /// Number of pairs.
    pub pairs: usize,
    /// Distinct source (antecedent) hosts.
    pub distinct_src: usize,
    /// Distinct via (consequent) hosts.
    pub distinct_via: usize,
    /// Distinct (src, via) combinations.
    pub distinct_pairs: usize,
    /// Mean pairs per distinct source host.
    pub pairs_per_src: f64,
    /// Share of pairs carried by the single most common (src, via)
    /// combination — a locality indicator.
    pub top_pair_share: f64,
}

/// Computes [`PairStats`].
pub fn pair_stats(pairs: &[PairRecord]) -> PairStats {
    let mut srcs: HashSet<HostId> = HashSet::new();
    let mut vias: HashSet<HostId> = HashSet::new();
    let mut combos: HashMap<(HostId, HostId), usize> = HashMap::new();
    for p in pairs {
        srcs.insert(p.src);
        vias.insert(p.via);
        *combos.entry((p.src, p.via)).or_insert(0) += 1;
    }
    let top = combos.values().copied().max().unwrap_or(0);
    PairStats {
        pairs: pairs.len(),
        distinct_src: srcs.len(),
        distinct_via: vias.len(),
        distinct_pairs: combos.len(),
        pairs_per_src: if srcs.is_empty() {
            0.0
        } else {
            pairs.len() as f64 / srcs.len() as f64
        },
        top_pair_share: if pairs.is_empty() {
            0.0
        } else {
            top as f64 / pairs.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Guid, QueryId};
    use arq_simkern::SimTime;

    #[test]
    fn raw_stats_counts() {
        let queries: Vec<QueryRecord> = (0..10)
            .map(|i| QueryRecord {
                time: SimTime::from_ticks(i),
                guid: Guid(u128::from(i % 8)), // two duplicate guids
                from: HostId((i % 3) as u32),
                query: QueryId(0),
            })
            .collect();
        let replies: Vec<ReplyRecord> = (0..4)
            .map(|i| ReplyRecord {
                time: SimTime::from_ticks(100 + i),
                guid: Guid(u128::from(i)),
                via: HostId(9),
                responder: HostId(50),
                file: QueryId(0),
            })
            .collect();
        let s = raw_stats(&queries, &replies);
        assert_eq!(s.queries, 10);
        assert_eq!(s.replies, 4);
        assert!((s.answer_ratio - 0.4).abs() < 1e-12);
        assert_eq!(s.distinct_query_hosts, 3);
        assert_eq!(s.distinct_guids, 8);
    }

    #[test]
    fn pair_stats_locality_indicator() {
        let mut pairs = Vec::new();
        for i in 0..90 {
            pairs.push(PairRecord {
                time: SimTime::from_ticks(i),
                guid: Guid(u128::from(i)),
                src: HostId(1),
                via: HostId(2),
                responder: HostId(3),
                query: QueryId(0),
            });
        }
        for i in 90..100 {
            pairs.push(PairRecord {
                time: SimTime::from_ticks(i),
                guid: Guid(u128::from(i)),
                src: HostId(4),
                via: HostId(5),
                responder: HostId(6),
                query: QueryId(0),
            });
        }
        let s = pair_stats(&pairs);
        assert_eq!(s.pairs, 100);
        assert_eq!(s.distinct_src, 2);
        assert_eq!(s.distinct_via, 2);
        assert_eq!(s.distinct_pairs, 2);
        assert!((s.pairs_per_src - 50.0).abs() < 1e-12);
        assert!((s.top_pair_share - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let s = raw_stats(&[], &[]);
        assert_eq!(s.answer_ratio, 0.0);
        let p = pair_stats(&[]);
        assert_eq!(p.pairs_per_src, 0.0);
        assert_eq!(p.top_pair_share, 0.0);
    }
}
