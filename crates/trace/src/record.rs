//! The trace schema.
//!
//! Field-for-field, this follows §IV-A of the paper:
//!
//! > "For queries, the query string, the time of the query, the IP address
//! > of the node that forwarded the query, and a globally-unique
//! > identifier (GUID) assigned to the query by the issuing node were
//! > recorded. For replies, the time the reply was received, the GUID of
//! > the query, the neighbor from which the reply was sent, the host of
//! > the matching file, and the name of the file matching the query were
//! > recorded."
//!
//! Hosts are interned as [`HostId`] (the analogue of an IP address) and
//! query strings as [`QueryId`]; both stay stable across the life of a
//! trace so joins and rule antecedents remain meaningful.

use arq_simkern::SimTime;
use std::fmt;

/// A host identity as seen by the collecting node (the paper's IP
/// address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// An interned query string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u32);

/// A query's globally-unique identifier — *assigned by the issuing node*,
/// and therefore not actually guaranteed unique: faulty clients reuse
/// them, which is why [`crate::db::TraceDb::clean`] exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Guid(pub u128);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// One query message observed at the collecting node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRecord {
    /// When the query arrived.
    pub time: SimTime,
    /// The query's GUID as stamped by its issuer.
    pub guid: Guid,
    /// The neighbor that forwarded the query to us.
    pub from: HostId,
    /// The (interned) query string.
    pub query: QueryId,
}

/// One reply message observed at the collecting node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyRecord {
    /// When the reply arrived.
    pub time: SimTime,
    /// GUID of the query being answered.
    pub guid: Guid,
    /// The neighbor that delivered the reply — the *next hop on the path
    /// that led to a hit*, i.e. the rule consequent.
    pub via: HostId,
    /// The remote host actually sharing the matching file.
    pub responder: HostId,
    /// The (interned) name of the matching file.
    pub file: QueryId,
}

/// A joined query–reply pair: the unit the rule miner and all four
/// strategies consume. `src → via` is the candidate association rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairRecord {
    /// Reply arrival time (pairs are ordered by it).
    pub time: SimTime,
    /// GUID shared by query and reply.
    pub guid: Guid,
    /// The neighbor the query came from (rule antecedent).
    pub src: HostId,
    /// The neighbor the reply came back through (rule consequent).
    pub via: HostId,
    /// The host sharing the file.
    pub responder: HostId,
    /// The query string id.
    pub query: QueryId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(HostId(7).to_string(), "h7");
        assert_eq!(QueryId(3).to_string(), "q3");
        assert_eq!(Guid(0xAB).to_string().len(), 32);
    }

    #[test]
    fn records_are_copy_and_comparable() {
        let q = QueryRecord {
            time: SimTime::from_ticks(1),
            guid: Guid(9),
            from: HostId(2),
            query: QueryId(4),
        };
        let q2 = q; // Copy
        assert_eq!(q, q2);
    }
}
