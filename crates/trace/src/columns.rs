//! Columnar (structure-of-arrays) views of pair blocks.
//!
//! The mining hot path only ever reads two of [`PairRecord`]'s six
//! fields: the interned source host and the interned reply neighbor.
//! Iterating 48-byte records to fetch 8 bytes wastes five sixths of
//! every cache line, so the sharded miner consumes a [`PairColumns`]
//! view instead — the `(src, via)` host-id columns of a block packed
//! into dense `Vec<HostId>`s. Columns are plain data: building them is
//! one linear pass, and a view can be reused across re-mines because it
//! owns its storage (cleared, not reallocated, on refill).
//!
//! [`PairColumns::packed`] exposes the `(src << 32) | via` key the
//! open-addressed count tables in `arq-assoc` hash on; packing two
//! interned 32-bit ids into one `u64` makes the pair key a single
//! machine word — no tuple hashing, no field shuffling.

use crate::record::{HostId, PairRecord};

/// Packs an interned `(src, via)` host pair into one `u64` key.
///
/// The source id occupies the high 32 bits, so packed keys sort by
/// source first — handy for debugging, irrelevant for hashing.
#[inline]
pub fn pack_pair(src: HostId, via: HostId) -> u64 {
    (u64::from(src.0) << 32) | u64::from(via.0)
}

/// Unpacks a key produced by [`pack_pair`].
#[inline]
pub fn unpack_pair(key: u64) -> (HostId, HostId) {
    (HostId((key >> 32) as u32), HostId(key as u32))
}

/// The `(src, via)` columns of one block of pair records.
///
/// Construction copies the two host-id fields out of the record slice;
/// every later pass over the block (counting, sharding) then touches
/// only these dense columns.
#[derive(Debug, Clone, Default)]
pub struct PairColumns {
    src: Vec<HostId>,
    via: Vec<HostId>,
}

impl PairColumns {
    /// An empty column pair, ready for [`fill`](Self::fill).
    pub fn new() -> Self {
        PairColumns::default()
    }

    /// Builds columns from a block of records.
    pub fn from_block(block: &[PairRecord]) -> Self {
        let mut c = PairColumns::new();
        c.fill(block);
        c
    }

    /// Replaces the contents with `block`'s columns, reusing the
    /// existing allocations.
    pub fn fill(&mut self, block: &[PairRecord]) {
        self.src.clear();
        self.via.clear();
        self.src.extend(block.iter().map(|p| p.src));
        self.via.extend(block.iter().map(|p| p.via));
    }

    /// Number of pairs in the view.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the view holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// The source-host column.
    pub fn src(&self) -> &[HostId] {
        &self.src
    }

    /// The reply-neighbor column.
    pub fn via(&self) -> &[HostId] {
        &self.via
    }

    /// The packed `(src << 32) | via` key of pair `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn packed(&self, i: usize) -> u64 {
        pack_pair(self.src[i], self.via[i])
    }

    /// Iterates over the packed keys of a sub-range of the block —
    /// the unit of work one counting shard consumes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn packed_range(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = u64> + '_ {
        self.src[range.clone()]
            .iter()
            .zip(&self.via[range])
            .map(|(&s, &v)| pack_pair(s, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Guid, QueryId};
    use arq_simkern::SimTime;

    fn pair(i: u64, src: u32, via: u32) -> PairRecord {
        PairRecord {
            time: SimTime::from_ticks(i),
            guid: Guid(u128::from(i)),
            src: HostId(src),
            via: HostId(via),
            responder: HostId(7),
            query: QueryId(0),
        }
    }

    #[test]
    fn pack_roundtrips_extremes() {
        for (s, v) in [
            (0, 0),
            (1, 2),
            (u32::MAX, 0),
            (0, u32::MAX),
            (u32::MAX, u32::MAX),
        ] {
            let key = pack_pair(HostId(s), HostId(v));
            assert_eq!(unpack_pair(key), (HostId(s), HostId(v)));
        }
        // Distinct pairs pack to distinct keys even when ids collide
        // across the two roles.
        assert_ne!(
            pack_pair(HostId(1), HostId(2)),
            pack_pair(HostId(2), HostId(1))
        );
    }

    #[test]
    fn columns_mirror_the_block() {
        let block: Vec<PairRecord> = (0..10).map(|i| pair(i, i as u32, 100 + i as u32)).collect();
        let c = PairColumns::from_block(&block);
        assert_eq!(c.len(), 10);
        assert!(!c.is_empty());
        for (i, p) in block.iter().enumerate() {
            assert_eq!(c.src()[i], p.src);
            assert_eq!(c.via()[i], p.via);
            assert_eq!(c.packed(i), pack_pair(p.src, p.via));
        }
    }

    #[test]
    fn refill_reuses_and_replaces() {
        let mut c = PairColumns::from_block(&[pair(0, 1, 2), pair(1, 3, 4)]);
        c.fill(&[pair(2, 9, 8)]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.src(), &[HostId(9)]);
        assert_eq!(c.via(), &[HostId(8)]);
        c.fill(&[]);
        assert!(c.is_empty());
    }

    #[test]
    fn packed_range_walks_a_shard() {
        let block: Vec<PairRecord> = (0..6).map(|i| pair(i, i as u32, i as u32 + 1)).collect();
        let c = PairColumns::from_block(&block);
        let keys: Vec<u64> = c.packed_range(2..5).collect();
        assert_eq!(
            keys,
            vec![
                pack_pair(HostId(2), HostId(3)),
                pack_pair(HostId(3), HostId(4)),
                pack_pair(HostId(4), HostId(5)),
            ]
        );
        assert_eq!(c.packed_range(0..0).count(), 0);
    }
}
