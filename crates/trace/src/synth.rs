//! Calibrated synthetic trace generation.
//!
//! The paper evaluates on a 7-day Gnutella capture we cannot obtain. This
//! module generates traces from an explicit stochastic model of the
//! collector node's *local view*, built so that the statistical properties
//! the routing strategies depend on are present and tunable:
//!
//! * the collector has a **frontier** of `K` neighbor slots; a slot's
//!   occupant is a host id. Slots churn (occupant replaced by a fresh
//!   host) with a two-timescale lifetime mixture — a *fast* population
//!   (casual peers, mean life a few blocks) and a *slow* population
//!   (long-lived well-connected peers). Churned antecedents are what
//!   erodes **coverage**;
//! * replies travel back through a separate population of **relay**
//!   neighbors (the well-connected peers that carry reply traffic); each
//!   topic has a **primary route** and a **secondary route** — the relay
//!   through which servers for that topic are currently reachable.
//!   Routes re-randomize with their own mean lifetime and relays churn
//!   (a relay's replacement gets a fresh host id), both eroding
//!   **success**;
//! * queries arrive from a uniformly random slot, on a topic from that
//!   neighbor's small interest set (interest-based locality), and are
//!   answered via the primary route, the secondary route (probability
//!   `secondary_prob`), or a uniformly random neighbor (probability
//!   `uniform_noise`);
//! * an optional **upheaval** at a fixed pair index re-randomizes every
//!   route and every fast slot at once, modelling the connection-turnover
//!   event visible in the paper's Static Ruleset trace (success collapses
//!   around trial 16 and never recovers).
//!
//! `DESIGN.md` §5 derives the default constants from the paper's reported
//! coverage/success values; `tests/` asserts the resulting curves within
//! tolerance bands.

use crate::record::{Guid, HostId, PairRecord, QueryId, QueryRecord, ReplyRecord};
use arq_simkern::time::Duration;
use arq_simkern::{Rng64, SimTime};

/// Parameters of the synthetic pair process. All lifetimes are measured
/// in **pairs** (one pair ≈ one unit of trace time), so analysis block
/// size is an independent choice, exactly as in the paper.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of query–reply pairs to generate.
    pub pairs: usize,
    /// Frontier width `K`: concurrent neighbor slots.
    pub frontier: usize,
    /// Fraction of slots holding fast-churning occupants.
    pub fast_fraction: f64,
    /// Mean occupancy of a fast slot, in pairs.
    pub mean_fast_life: f64,
    /// Mean occupancy of a slow slot, in pairs.
    pub mean_slow_life: f64,
    /// Topic universe size.
    pub topics: usize,
    /// Topics per neighbor interest set.
    pub topics_per_neighbor: usize,
    /// Mean lifetime of a topic's primary/secondary route, in pairs.
    pub mean_route_life: f64,
    /// Number of relay neighbors carrying reply traffic.
    pub relays: usize,
    /// Mean occupancy of a relay slot, in pairs.
    pub mean_relay_life: f64,
    /// Probability a reply arrives via the secondary route.
    pub secondary_prob: f64,
    /// Probability a reply arrives via a uniformly random slot.
    pub uniform_noise: f64,
    /// Unanswered queries generated per answered one (raw mode only).
    pub unanswered_per_pair: f64,
    /// Probability a query reuses an earlier GUID (faulty client, raw
    /// mode only).
    pub faulty_guid_prob: f64,
    /// Pair index at which all routes and fast slots are re-randomized.
    pub upheaval_at_pair: Option<usize>,
    /// Mean simulated ticks between consecutive pairs.
    pub mean_interarrival: u64,
    /// Master seed.
    pub seed: u64,
}

impl SynthConfig {
    /// The calibration targeting the paper's reported numbers with
    /// 10,000-pair blocks (see `DESIGN.md` §5).
    pub fn paper_default(pairs: usize, seed: u64) -> Self {
        SynthConfig {
            pairs,
            frontier: 40,
            fast_fraction: 0.55,
            mean_fast_life: 30_000.0,
            mean_slow_life: 1_500_000.0,
            topics: 60,
            topics_per_neighbor: 4,
            mean_route_life: 95_000.0,
            relays: 30,
            mean_relay_life: 600_000.0,
            secondary_prob: 0.13,
            uniform_noise: 0.04,
            unanswered_per_pair: 2.2,
            faulty_guid_prob: 0.0008,
            upheaval_at_pair: None,
            mean_interarrival: 186_000, // µs: ~3.25M pairs over 7 days
            seed,
        }
    }

    /// `paper_default` plus the upheaval event at block 15 (of 10k-pair
    /// blocks) used by the Static Ruleset experiment.
    pub fn paper_static(pairs: usize, seed: u64) -> Self {
        SynthConfig {
            upheaval_at_pair: Some(150_000),
            ..Self::paper_default(pairs, seed)
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    host: HostId,
    fast: bool,
    topics: Vec<u32>, // geometric-weighted interest set, most-loved first
}

#[derive(Debug, Clone, Copy)]
struct Route {
    primary: usize,   // slot index
    secondary: usize, // slot index
}

/// The generator. Create with [`SynthTrace::new`], then call
/// [`SynthTrace::pairs`] for the joined stream or [`SynthTrace::raw`]
/// for a pre-join trace exercising the cleaning path.
pub struct SynthTrace {
    cfg: SynthConfig,
}

struct Engine {
    cfg: SynthConfig,
    rng: Rng64,
    slots: Vec<Slot>,
    relays: Vec<HostId>,
    routes: Vec<Route>,
    servers: Vec<HostId>,
    next_host: u32,
    clock: SimTime,
    next_guid: u128,
    slot_churn_rate: f64,
    relay_churn_rate: f64,
    route_churn_rate: f64,
}

impl Engine {
    fn new(cfg: SynthConfig) -> Self {
        assert!(cfg.frontier >= 4, "frontier too small");
        assert!(
            cfg.topics >= cfg.topics_per_neighbor,
            "topic universe too small"
        );
        assert!(
            cfg.secondary_prob + cfg.uniform_noise < 1.0,
            "reply-path probabilities exceed 1"
        );
        let mut rng = Rng64::seed_from(cfg.seed);
        let mut next_host = 0u32;
        let fast_slots = (cfg.frontier as f64 * cfg.fast_fraction).round() as usize;
        let slots: Vec<Slot> = (0..cfg.frontier)
            .map(|i| {
                let fast = i < fast_slots;
                Self::fresh_slot(&cfg, fast, &mut next_host, &mut rng)
            })
            .collect();
        assert!(cfg.relays >= 2, "need at least two relays");
        let relays: Vec<HostId> = (0..cfg.relays)
            .map(|_| {
                let h = HostId(500_000 + next_host);
                next_host += 1;
                h
            })
            .collect();
        let servers: Vec<HostId> = (0..cfg.topics)
            .map(|_| {
                let h = HostId(1_000_000 + next_host);
                next_host += 1;
                h
            })
            .collect();
        let mut engine = Engine {
            slot_churn_rate: slots
                .iter()
                .map(|s| {
                    1.0 / if s.fast {
                        cfg.mean_fast_life
                    } else {
                        cfg.mean_slow_life
                    }
                })
                .sum(),
            relay_churn_rate: cfg.relays as f64 / cfg.mean_relay_life,
            route_churn_rate: 2.0 * cfg.topics as f64 / cfg.mean_route_life,
            routes: Vec::new(),
            servers,
            relays,
            slots,
            next_host,
            clock: SimTime::ZERO,
            next_guid: 1,
            rng,
            cfg,
        };
        engine.routes = (0..engine.cfg.topics)
            .map(|_| Route {
                primary: engine.rng.index(engine.cfg.relays),
                secondary: engine.rng.index(engine.cfg.relays),
            })
            .collect();
        engine
    }

    fn fresh_slot(cfg: &SynthConfig, fast: bool, next_host: &mut u32, rng: &mut Rng64) -> Slot {
        let host = HostId(*next_host);
        *next_host += 1;
        let picks = rng.sample_indices(cfg.topics, cfg.topics_per_neighbor);
        Slot {
            host,
            fast,
            topics: picks.into_iter().map(|t| t as u32).collect(),
        }
    }

    fn fresh_relay(&mut self) -> HostId {
        let h = HostId(500_000 + self.next_host);
        self.next_host += 1;
        h
    }

    /// Weighted interest pick: geometric 0.6 decay over the slot's topic
    /// list, matching `InterestProfile::sample`.
    fn pick_topic(&mut self, slot: usize) -> u32 {
        let topics = &self.slots[slot].topics;
        let k = topics.len();
        let mut u = self.rng.f64();
        let total: f64 = (0..k).map(|i| 0.6f64.powi(i as i32)).sum();
        for (i, &t) in topics.iter().enumerate() {
            let w = 0.6f64.powi(i as i32) / total;
            if u < w {
                return t;
            }
            u -= w;
        }
        *topics.last().expect("slot with no topics")
    }

    fn churn_step(&mut self) {
        // Slot churn: Poisson-thinned to one event max per pair (rates are
        // ≪ 1 per pair, so this is an excellent approximation).
        if self.rng.chance(self.slot_churn_rate) {
            // Choose a slot weighted by its own churn rate.
            let total = self.slot_churn_rate;
            let mut u = self.rng.f64() * total;
            let mut chosen = 0;
            for (i, s) in self.slots.iter().enumerate() {
                let r = 1.0
                    / if s.fast {
                        self.cfg.mean_fast_life
                    } else {
                        self.cfg.mean_slow_life
                    };
                if u < r {
                    chosen = i;
                    break;
                }
                u -= r;
            }
            let fast = self.slots[chosen].fast;
            self.slots[chosen] =
                Self::fresh_slot(&self.cfg, fast, &mut self.next_host, &mut self.rng);
        }
        // Relay churn: the departing relay's slot is taken over by a
        // fresh host, silently invalidating every rule pointing at it.
        if self.rng.chance(self.relay_churn_rate) {
            let idx = self.rng.index(self.relays.len());
            self.relays[idx] = self.fresh_relay();
        }
        // Route churn: the content behind a topic becomes reachable
        // through a different relay.
        if self.rng.chance(self.route_churn_rate) {
            let topic = self.rng.index(self.cfg.topics);
            let new_relay = self.rng.index(self.relays.len());
            if self.rng.chance(0.5) {
                self.routes[topic].primary = new_relay;
            } else {
                self.routes[topic].secondary = new_relay;
            }
        }
    }

    fn upheaval(&mut self) {
        // The collector's connection set turns over: all fast occupants
        // are replaced, every relay is replaced, every route is
        // re-randomized. Slow queriers persist (coverage survives), but
        // no old reply path does (success collapses).
        for i in 0..self.slots.len() {
            if self.slots[i].fast {
                self.slots[i] =
                    Self::fresh_slot(&self.cfg, true, &mut self.next_host, &mut self.rng);
            }
        }
        for i in 0..self.relays.len() {
            self.relays[i] = self.fresh_relay();
        }
        for t in 0..self.cfg.topics {
            self.routes[t] = Route {
                primary: self.rng.index(self.relays.len()),
                secondary: self.rng.index(self.relays.len()),
            };
        }
    }

    fn advance_clock(&mut self) -> SimTime {
        let dt = self.rng.exp(self.cfg.mean_interarrival as f64).max(1.0) as u64;
        self.clock = self.clock.saturating_add(Duration::from_ticks(dt));
        self.clock
    }

    fn next_pair(&mut self, index: usize) -> PairRecord {
        if self.cfg.upheaval_at_pair == Some(index) {
            self.upheaval();
        }
        self.churn_step();
        let slot = self.rng.index(self.slots.len());
        let src = self.slots[slot].host;
        let topic = self.pick_topic(slot) as usize;
        let u = self.rng.f64();
        let via_relay = if u < self.cfg.uniform_noise {
            self.rng.index(self.relays.len())
        } else if u < self.cfg.uniform_noise + self.cfg.secondary_prob {
            self.routes[topic].secondary
        } else {
            self.routes[topic].primary
        };
        let via = self.relays[via_relay];
        let guid = Guid(self.next_guid);
        self.next_guid += 1;
        let time = self.advance_clock();
        PairRecord {
            time,
            guid,
            src,
            via,
            responder: self.servers[topic],
            query: QueryId((topic as u32) << 12 | (self.rng.below(512) as u32)),
        }
    }
}

impl SynthTrace {
    /// Creates a generator for the given configuration.
    pub fn new(cfg: SynthConfig) -> Self {
        SynthTrace { cfg }
    }

    /// Generates the joined pair stream directly (the fast path used by
    /// the strategy experiments).
    pub fn pairs(&self) -> Vec<PairRecord> {
        let mut engine = Engine::new(self.cfg.clone());
        (0..self.cfg.pairs).map(|i| engine.next_pair(i)).collect()
    }

    /// Generates a raw (pre-join) trace: answered queries with their
    /// replies, plus unanswered queries and a sprinkling of faulty-client
    /// GUID reuse — the input the [`crate::db::TraceDb`] cleaning path
    /// expects.
    pub fn raw(&self) -> (Vec<QueryRecord>, Vec<ReplyRecord>) {
        let mut engine = Engine::new(self.cfg.clone());
        let mut queries = Vec::new();
        let mut replies = Vec::new();
        let mut guid_pool: Vec<Guid> = Vec::new();
        for i in 0..self.cfg.pairs {
            // Unanswered chaff first.
            let n_chaff = poisson_small(self.cfg.unanswered_per_pair, &mut engine.rng);
            for _ in 0..n_chaff {
                let slot = engine.rng.index(engine.slots.len());
                let from = engine.slots[slot].host;
                let topic = engine.pick_topic(slot);
                let guid = if !guid_pool.is_empty() && engine.rng.chance(self.cfg.faulty_guid_prob)
                {
                    *engine.rng.pick(&guid_pool)
                } else {
                    let g = Guid(engine.next_guid | 1 << 100);
                    engine.next_guid += 1;
                    g
                };
                guid_pool.push(guid);
                let time = engine.advance_clock();
                queries.push(QueryRecord {
                    time,
                    guid,
                    from,
                    query: QueryId(topic << 12 | engine.rng.below(512) as u32),
                });
            }
            // The answered pair.
            let p = engine.next_pair(i);
            guid_pool.push(p.guid);
            queries.push(QueryRecord {
                time: p.time,
                guid: p.guid,
                from: p.src,
                query: p.query,
            });
            let latency =
                Duration::from_ticks(engine.rng.below(self.cfg.mean_interarrival / 2).max(1));
            replies.push(ReplyRecord {
                time: p.time.saturating_add(latency),
                guid: p.guid,
                via: p.via,
                responder: p.responder,
                file: p.query,
            });
            // Bound the reuse pool so memory stays flat.
            if guid_pool.len() > 10_000 {
                guid_pool.drain(..5_000);
            }
        }
        (queries, replies)
    }
}

/// Poisson sample for small means via inversion (Knuth's method).
fn poisson_small(mean: f64, rng: &mut Rng64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.f64();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // numerically impossible for sane means
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_cfg(pairs: usize) -> SynthConfig {
        SynthConfig {
            pairs,
            frontier: 10,
            fast_fraction: 0.5,
            mean_fast_life: 2_000.0,
            mean_slow_life: 50_000.0,
            topics: 12,
            topics_per_neighbor: 3,
            mean_route_life: 5_000.0,
            relays: 8,
            mean_relay_life: 20_000.0,
            secondary_prob: 0.1,
            uniform_noise: 0.02,
            unanswered_per_pair: 1.0,
            faulty_guid_prob: 0.05,
            upheaval_at_pair: None,
            mean_interarrival: 100,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = SynthTrace::new(small_cfg(2_000)).pairs();
        let b = SynthTrace::new(small_cfg(2_000)).pairs();
        assert_eq!(a, b);
        let mut c = small_cfg(2_000);
        c.seed = 8;
        assert_ne!(SynthTrace::new(c).pairs(), a);
    }

    #[test]
    fn pairs_have_unique_guids_and_monotone_time() {
        let pairs = SynthTrace::new(small_cfg(5_000)).pairs();
        assert_eq!(pairs.len(), 5_000);
        let guids: HashSet<_> = pairs.iter().map(|p| p.guid).collect();
        assert_eq!(guids.len(), 5_000);
        assert!(pairs.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn sources_come_from_a_bounded_frontier() {
        let pairs = SynthTrace::new(small_cfg(3_000)).pairs();
        // At any moment only `frontier` sources are active; over the run
        // churn adds more, but far fewer than the pair count.
        let srcs: HashSet<_> = pairs.iter().map(|p| p.src).collect();
        assert!(srcs.len() >= 10, "no churn happened at all?");
        assert!(
            srcs.len() < 100,
            "frontier leaked: {} distinct sources",
            srcs.len()
        );
    }

    #[test]
    fn locality_top_pair_dominates_noise() {
        let pairs = SynthTrace::new(small_cfg(20_000)).pairs();
        let stats = crate::stats::pair_stats(&pairs);
        // With 10 slots and stable routes, (src, via) mass concentrates far
        // above the uniform baseline of 1/(10*10).
        assert!(
            stats.top_pair_share > 0.02,
            "no locality: top share {}",
            stats.top_pair_share
        );
    }

    #[test]
    fn churn_introduces_fresh_hosts_over_time() {
        let pairs = SynthTrace::new(small_cfg(30_000)).pairs();
        let early: HashSet<_> = pairs[..5_000].iter().map(|p| p.src).collect();
        let late: HashSet<_> = pairs[25_000..].iter().map(|p| p.src).collect();
        let fresh = late.difference(&early).count();
        assert!(fresh > 0, "no new hosts after 25k pairs of churn");
    }

    #[test]
    fn upheaval_rotates_fast_population() {
        let mut cfg = small_cfg(10_000);
        cfg.mean_fast_life = 1e12; // disable ordinary churn
        cfg.mean_slow_life = 1e12;
        cfg.mean_route_life = 1e12;
        cfg.upheaval_at_pair = Some(5_000);
        let pairs = SynthTrace::new(cfg).pairs();
        let before: HashSet<_> = pairs[..5_000].iter().map(|p| p.src).collect();
        let after: HashSet<_> = pairs[5_000..].iter().map(|p| p.src).collect();
        let vanished = before.difference(&after).count();
        // Half the slots are fast and must have rotated.
        assert!(vanished >= 3, "upheaval did not replace fast slots");
        // Slow slots survive.
        assert!(after.intersection(&before).count() >= 3);
    }

    #[test]
    fn raw_mode_produces_chaff_and_faulty_guids() {
        let (queries, replies) = SynthTrace::new(small_cfg(2_000)).raw();
        assert_eq!(replies.len(), 2_000);
        // ~1 chaff per pair -> about twice as many queries as replies.
        assert!(queries.len() > replies.len());
        let distinct: HashSet<_> = queries.iter().map(|q| q.guid).collect();
        assert!(
            distinct.len() < queries.len(),
            "faulty clients produced no duplicate GUIDs"
        );
        // Every reply's GUID exists among queries and follows the *first*
        // use of that GUID (faulty clients may reuse it later).
        let mut first_use: std::collections::HashMap<Guid, SimTime> = Default::default();
        for q in &queries {
            let e = first_use.entry(q.guid).or_insert(q.time);
            *e = (*e).min(q.time);
        }
        for r in &replies {
            let qt = first_use.get(&r.guid).expect("reply without query");
            assert!(r.time >= *qt);
        }
    }

    #[test]
    fn raw_mode_feeds_the_db_pipeline() {
        let (queries, replies) = SynthTrace::new(small_cfg(1_000)).raw();
        let mut db = crate::db::TraceDb::new();
        db.extend(queries, replies);
        let (report, pairs) = db.clean_and_join();
        assert!(report.duplicate_queries > 0, "cleaning had nothing to do");
        // Almost every reply should survive the join; faulty reuse may
        // steal a handful.
        assert!(pairs.len() > 900, "only {} pairs joined", pairs.len());
    }

    #[test]
    fn poisson_mean_is_right() {
        let mut rng = Rng64::seed_from(3);
        let n = 50_000;
        let total: usize = (0..n).map(|_| poisson_small(2.2, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.2).abs() < 0.05, "poisson mean {mean}");
        assert_eq!(poisson_small(0.0, &mut rng), 0);
    }

    #[test]
    fn paper_presets_are_wellformed() {
        let d = SynthConfig::paper_default(1000, 1);
        assert!(d.upheaval_at_pair.is_none());
        let s = SynthConfig::paper_static(1000, 1);
        assert_eq!(s.upheaval_at_pair, Some(150_000));
        // Both must construct an engine without panicking.
        let _ = SynthTrace::new(SynthConfig {
            pairs: 100,
            ..SynthConfig::paper_default(100, 1)
        })
        .pairs();
    }
}
