//! The in-memory trace database.
//!
//! Replaces the paper's MySQL instance. The lifecycle is:
//!
//! 1. **ingest** raw [`QueryRecord`]s and [`ReplyRecord`]s (from the live
//!    simulator's collector node, a CSV import, or the synthetic
//!    generator);
//! 2. **clean** — the paper found GUIDs reused by faulty clients and kept
//!    only "the record corresponding to the first use of that GUID";
//! 3. **join** — inner-join queries with replies on GUID, producing the
//!    time-ordered [`PairRecord`] stream ("the join of these data produced
//!    3,254,274 query-reply pairs").

use crate::record::{Guid, PairRecord, QueryRecord, ReplyRecord};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Counters describing a [`TraceDb::clean`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanReport {
    /// Query records dropped because their GUID was already used.
    pub duplicate_queries: u64,
    /// Reply records dropped because they answer a dropped duplicate or
    /// carry a GUID with no surviving query at all.
    pub orphan_replies: u64,
}

/// In-memory store of one trace.
#[derive(Debug, Default, Clone)]
pub struct TraceDb {
    queries: Vec<QueryRecord>,
    replies: Vec<ReplyRecord>,
    cleaned: bool,
}

impl TraceDb {
    /// An empty database.
    pub fn new() -> Self {
        TraceDb::default()
    }

    /// Ingests one query record.
    pub fn push_query(&mut self, q: QueryRecord) {
        self.cleaned = false;
        self.queries.push(q);
    }

    /// Ingests one reply record.
    pub fn push_reply(&mut self, r: ReplyRecord) {
        self.cleaned = false;
        self.replies.push(r);
    }

    /// Bulk ingest.
    pub fn extend(
        &mut self,
        queries: impl IntoIterator<Item = QueryRecord>,
        replies: impl IntoIterator<Item = ReplyRecord>,
    ) {
        self.cleaned = false;
        self.queries.extend(queries);
        self.replies.extend(replies);
    }

    /// Number of stored query records.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Number of stored reply records.
    pub fn reply_count(&self) -> usize {
        self.replies.len()
    }

    /// The stored query records.
    pub fn queries(&self) -> &[QueryRecord] {
        &self.queries
    }

    /// The stored reply records.
    pub fn replies(&self) -> &[ReplyRecord] {
        &self.replies
    }

    /// Removes duplicate-GUID queries (keeping the chronologically first
    /// use) and replies that no longer join to any surviving query.
    ///
    /// Idempotent: running `clean` twice reports zero work the second
    /// time.
    pub fn clean(&mut self) -> CleanReport {
        let mut report = CleanReport::default();

        // Sort queries by time so "first use" is well defined even when
        // ingestion interleaved sources.
        self.queries.sort_by_key(|q| (q.time, q.guid));
        let mut first_query: HashMap<Guid, QueryRecord> =
            HashMap::with_capacity(self.queries.len());
        let mut kept_queries = Vec::with_capacity(self.queries.len());
        for q in self.queries.drain(..) {
            match first_query.entry(q.guid) {
                Entry::Vacant(v) => {
                    v.insert(q);
                    kept_queries.push(q);
                }
                Entry::Occupied(_) => {
                    report.duplicate_queries += 1;
                }
            }
        }
        self.queries = kept_queries;

        // A reply survives only if a surviving query carries its GUID and
        // precedes it in time (a reply cannot legitimately arrive before
        // its query was seen).
        self.replies.sort_by_key(|r| (r.time, r.guid));
        let mut kept_replies = Vec::with_capacity(self.replies.len());
        for r in self.replies.drain(..) {
            match first_query.get(&r.guid) {
                Some(q) if q.time <= r.time => kept_replies.push(r),
                _ => report.orphan_replies += 1,
            }
        }
        self.replies = kept_replies;
        self.cleaned = true;
        report
    }

    /// Inner-joins queries and replies on GUID, producing the pair stream
    /// ordered by reply time. Every surviving reply yields exactly one
    /// pair, matching the paper's join cardinality.
    ///
    /// # Panics
    ///
    /// Panics if called before [`TraceDb::clean`] — joining dirty data
    /// silently reproduces the GUID-collision bug the paper had to clean
    /// up, so we make the ordering explicit.
    pub fn join(&self) -> Vec<PairRecord> {
        assert!(self.cleaned, "TraceDb::join called before clean()");
        let by_guid: HashMap<Guid, &QueryRecord> =
            self.queries.iter().map(|q| (q.guid, q)).collect();
        let mut pairs: Vec<PairRecord> = self
            .replies
            .iter()
            .filter_map(|r| {
                by_guid.get(&r.guid).map(|q| PairRecord {
                    time: r.time,
                    guid: r.guid,
                    src: q.from,
                    via: r.via,
                    responder: r.responder,
                    query: q.query,
                })
            })
            .collect();
        pairs.sort_by_key(|p| (p.time, p.guid));
        pairs
    }

    /// Convenience: clean then join.
    pub fn clean_and_join(&mut self) -> (CleanReport, Vec<PairRecord>) {
        let report = self.clean();
        let pairs = self.join();
        (report, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{HostId, QueryId};
    use arq_simkern::SimTime;

    fn q(t: u64, guid: u128, from: u32, query: u32) -> QueryRecord {
        QueryRecord {
            time: SimTime::from_ticks(t),
            guid: Guid(guid),
            from: HostId(from),
            query: QueryId(query),
        }
    }

    fn r(t: u64, guid: u128, via: u32, responder: u32) -> ReplyRecord {
        ReplyRecord {
            time: SimTime::from_ticks(t),
            guid: Guid(guid),
            via: HostId(via),
            responder: HostId(responder),
            file: QueryId(0),
        }
    }

    #[test]
    fn clean_keeps_first_guid_use() {
        let mut db = TraceDb::new();
        db.push_query(q(10, 1, 100, 0)); // duplicate, later
        db.push_query(q(5, 1, 200, 0)); // first use
        db.push_query(q(7, 2, 300, 0));
        let report = db.clean();
        assert_eq!(report.duplicate_queries, 1);
        assert_eq!(db.query_count(), 2);
        // The survivor for GUID 1 is the t=5 record from host 200.
        let survivor = db.queries().iter().find(|x| x.guid == Guid(1)).unwrap();
        assert_eq!(survivor.from, HostId(200));
    }

    #[test]
    fn clean_drops_orphan_and_premature_replies() {
        let mut db = TraceDb::new();
        db.push_query(q(10, 1, 100, 0));
        db.push_reply(r(20, 1, 101, 500)); // fine
        db.push_reply(r(5, 1, 102, 501)); // before query: dropped
        db.push_reply(r(30, 99, 103, 502)); // no such query: dropped
        let report = db.clean();
        assert_eq!(report.orphan_replies, 2);
        assert_eq!(db.reply_count(), 1);
    }

    #[test]
    fn clean_is_idempotent() {
        let mut db = TraceDb::new();
        db.push_query(q(1, 1, 1, 0));
        db.push_query(q(2, 1, 2, 0));
        db.push_reply(r(3, 1, 3, 4));
        let first = db.clean();
        assert_eq!(first.duplicate_queries, 1);
        let second = db.clean();
        assert_eq!(second, CleanReport::default());
    }

    #[test]
    fn join_produces_one_pair_per_surviving_reply() {
        let mut db = TraceDb::new();
        db.push_query(q(1, 10, 7, 42));
        db.push_query(q(2, 11, 8, 43));
        db.push_reply(r(5, 10, 9, 100));
        db.push_reply(r(6, 10, 9, 101)); // second reply to same query
        db.push_reply(r(7, 11, 12, 102));
        let (_, pairs) = db.clean_and_join();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0].src, HostId(7));
        assert_eq!(pairs[0].via, HostId(9));
        assert_eq!(pairs[0].query, QueryId(42));
        // Ordered by reply time.
        assert!(pairs.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    #[should_panic(expected = "before clean")]
    fn join_requires_clean() {
        let mut db = TraceDb::new();
        db.push_query(q(1, 1, 1, 1));
        db.join();
    }

    #[test]
    fn duplicate_guid_replies_join_to_first_query_only() {
        // The paper: "instances of different queries having the same GUID
        // were found … only the record corresponding to the first use of
        // that GUID was kept."
        let mut db = TraceDb::new();
        db.push_query(q(1, 5, 10, 1)); // first use, from host 10
        db.push_query(q(4, 5, 20, 2)); // faulty client reuses GUID 5
        db.push_reply(r(8, 5, 30, 99));
        let (report, pairs) = db.clean_and_join();
        assert_eq!(report.duplicate_queries, 1);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].src, HostId(10), "pair joined to the wrong query");
    }

    #[test]
    fn empty_db_cleans_and_joins() {
        let mut db = TraceDb::new();
        let (report, pairs) = db.clean_and_join();
        assert_eq!(report, CleanReport::default());
        assert!(pairs.is_empty());
    }
}
