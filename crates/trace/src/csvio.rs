//! Flat-file trace import/export.
//!
//! A deliberately simple, dependency-free CSV dialect: one record per
//! line, integer fields, `#`-prefixed comment lines, a mandatory header
//! naming the record type. All ids are numeric so no quoting/escaping is
//! ever needed.
//!
//! Formats:
//!
//! ```text
//! #arq-pairs v1
//! time,guid,src,via,responder,query
//! 17,42,3,9,120,7
//! ```
//!
//! and for raw (pre-join) traces:
//!
//! ```text
//! #arq-raw v1
//! Q,time,guid,from,query
//! R,time,guid,via,responder,file
//! ```

use crate::record::{Guid, HostId, PairRecord, QueryId, QueryRecord, ReplyRecord};
use arq_simkern::SimTime;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};

const PAIRS_HEADER: &str = "#arq-pairs v1";
const RAW_HEADER: &str = "#arq-raw v1";

/// Errors arising while parsing a trace file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structural problem, with line number and message.
    Malformed {
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn malformed(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        line,
        message: message.into(),
    }
}

/// Writes a pair stream in `#arq-pairs v1` format.
pub fn write_pairs<W: Write>(mut w: W, pairs: &[PairRecord]) -> io::Result<()> {
    let mut buf = String::with_capacity(64 * (pairs.len() + 2));
    buf.push_str(PAIRS_HEADER);
    buf.push('\n');
    buf.push_str("time,guid,src,via,responder,query\n");
    for p in pairs {
        let _ = writeln!(
            buf,
            "{},{},{},{},{},{}",
            p.time.ticks(),
            p.guid.0,
            p.src.0,
            p.via.0,
            p.responder.0,
            p.query.0
        );
    }
    w.write_all(buf.as_bytes())
}

/// Reads a pair stream written by [`write_pairs`].
pub fn read_pairs<R: Read>(r: R) -> Result<Vec<PairRecord>, ParseError> {
    let reader = BufReader::new(r);
    let mut pairs = Vec::new();
    let mut lines = reader.lines().enumerate();
    let (_, first) = lines.next().ok_or_else(|| malformed(1, "empty file"))?;
    let first = first?;
    if first.trim() != PAIRS_HEADER {
        return Err(malformed(
            1,
            format!("expected `{PAIRS_HEADER}`, got `{first}`"),
        ));
    }
    for (idx, line) in lines {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with("time,") {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 6 {
            return Err(malformed(
                lineno,
                format!("expected 6 fields, got {}", fields.len()),
            ));
        }
        let parse_u64 = |s: &str, what: &str| {
            s.parse::<u64>()
                .map_err(|_| malformed(lineno, format!("bad {what}: `{s}`")))
        };
        let guid = fields[1]
            .parse::<u128>()
            .map_err(|_| malformed(lineno, format!("bad guid: `{}`", fields[1])))?;
        pairs.push(PairRecord {
            time: SimTime::from_ticks(parse_u64(fields[0], "time")?),
            guid: Guid(guid),
            src: HostId(parse_u64(fields[2], "src")? as u32),
            via: HostId(parse_u64(fields[3], "via")? as u32),
            responder: HostId(parse_u64(fields[4], "responder")? as u32),
            query: QueryId(parse_u64(fields[5], "query")? as u32),
        });
    }
    Ok(pairs)
}

/// Writes a raw (pre-join) trace in `#arq-raw v1` format.
pub fn write_raw<W: Write>(
    mut w: W,
    queries: &[QueryRecord],
    replies: &[ReplyRecord],
) -> io::Result<()> {
    let mut buf = String::with_capacity(48 * (queries.len() + replies.len() + 2));
    buf.push_str(RAW_HEADER);
    buf.push('\n');
    for q in queries {
        let _ = writeln!(
            buf,
            "Q,{},{},{},{}",
            q.time.ticks(),
            q.guid.0,
            q.from.0,
            q.query.0
        );
    }
    for r in replies {
        let _ = writeln!(
            buf,
            "R,{},{},{},{},{}",
            r.time.ticks(),
            r.guid.0,
            r.via.0,
            r.responder.0,
            r.file.0
        );
    }
    w.write_all(buf.as_bytes())
}

/// Reads a raw trace written by [`write_raw`].
pub fn read_raw<R: Read>(r: R) -> Result<(Vec<QueryRecord>, Vec<ReplyRecord>), ParseError> {
    let reader = BufReader::new(r);
    let mut queries = Vec::new();
    let mut replies = Vec::new();
    let mut lines = reader.lines().enumerate();
    let (_, first) = lines.next().ok_or_else(|| malformed(1, "empty file"))?;
    let first = first?;
    if first.trim() != RAW_HEADER {
        return Err(malformed(
            1,
            format!("expected `{RAW_HEADER}`, got `{first}`"),
        ));
    }
    for (idx, line) in lines {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        let parse_u64 = |s: &str, what: &str| {
            s.parse::<u64>()
                .map_err(|_| malformed(lineno, format!("bad {what}: `{s}`")))
        };
        match fields[0] {
            "Q" => {
                if fields.len() != 5 {
                    return Err(malformed(lineno, "Q record needs 5 fields"));
                }
                queries.push(QueryRecord {
                    time: SimTime::from_ticks(parse_u64(fields[1], "time")?),
                    guid: Guid(
                        fields[2]
                            .parse::<u128>()
                            .map_err(|_| malformed(lineno, "bad guid"))?,
                    ),
                    from: HostId(parse_u64(fields[3], "from")? as u32),
                    query: QueryId(parse_u64(fields[4], "query")? as u32),
                });
            }
            "R" => {
                if fields.len() != 6 {
                    return Err(malformed(lineno, "R record needs 6 fields"));
                }
                replies.push(ReplyRecord {
                    time: SimTime::from_ticks(parse_u64(fields[1], "time")?),
                    guid: Guid(
                        fields[2]
                            .parse::<u128>()
                            .map_err(|_| malformed(lineno, "bad guid"))?,
                    ),
                    via: HostId(parse_u64(fields[3], "via")? as u32),
                    responder: HostId(parse_u64(fields[4], "responder")? as u32),
                    file: QueryId(parse_u64(fields[5], "file")? as u32),
                });
            }
            other => {
                return Err(malformed(lineno, format!("unknown record tag `{other}`")));
            }
        }
    }
    Ok((queries, replies))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pairs() -> Vec<PairRecord> {
        (0..20)
            .map(|i| PairRecord {
                time: SimTime::from_ticks(i * 3),
                guid: Guid(u128::from(i) << 64 | 7),
                src: HostId(i as u32 % 4),
                via: HostId(10 + i as u32 % 3),
                responder: HostId(100 + i as u32),
                query: QueryId(i as u32 % 5),
            })
            .collect()
    }

    #[test]
    fn pairs_roundtrip() {
        let pairs = sample_pairs();
        let mut buf = Vec::new();
        write_pairs(&mut buf, &pairs).unwrap();
        let back = read_pairs(&buf[..]).unwrap();
        assert_eq!(pairs, back);
    }

    #[test]
    fn raw_roundtrip() {
        let queries = vec![QueryRecord {
            time: SimTime::from_ticks(5),
            guid: Guid(1),
            from: HostId(2),
            query: QueryId(3),
        }];
        let replies = vec![ReplyRecord {
            time: SimTime::from_ticks(9),
            guid: Guid(1),
            via: HostId(4),
            responder: HostId(5),
            file: QueryId(6),
        }];
        let mut buf = Vec::new();
        write_raw(&mut buf, &queries, &replies).unwrap();
        let (q2, r2) = read_raw(&buf[..]).unwrap();
        assert_eq!(queries, q2);
        assert_eq!(replies, r2);
    }

    #[test]
    fn rejects_wrong_header() {
        let data = b"#other v9\n1,2,3,4,5,6\n";
        assert!(matches!(
            read_pairs(&data[..]),
            Err(ParseError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_short_line_with_line_number() {
        let data = format!("{PAIRS_HEADER}\n1,2,3\n");
        match read_pairs(data.as_bytes()) {
            Err(ParseError::Malformed { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("6 fields"));
            }
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let data = format!("{PAIRS_HEADER}\n# a comment\n\n1,2,3,4,5,6\n");
        let pairs = read_pairs(data.as_bytes()).unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].guid, Guid(2));
    }

    #[test]
    fn rejects_bad_numbers() {
        let data = format!("{PAIRS_HEADER}\n1,2,x,4,5,6\n");
        assert!(read_pairs(data.as_bytes()).is_err());
    }

    #[test]
    fn raw_rejects_unknown_tag() {
        let data = format!("{RAW_HEADER}\nZ,1,2,3,4\n");
        assert!(read_raw(data.as_bytes()).is_err());
    }

    #[test]
    fn huge_guid_survives() {
        let pairs = vec![PairRecord {
            time: SimTime::from_ticks(0),
            guid: Guid(u128::MAX),
            src: HostId(0),
            via: HostId(0),
            responder: HostId(0),
            query: QueryId(0),
        }];
        let mut buf = Vec::new();
        write_pairs(&mut buf, &pairs).unwrap();
        assert_eq!(read_pairs(&buf[..]).unwrap(), pairs);
    }
}
