//! Block partitioning of the pair stream.
//!
//! Every strategy in the paper operates on *blocks*: consecutive runs of
//! `block_size` query–reply pairs. Rule sets are mined from one block and
//! tested against later blocks. [`Blocks`] is a zero-copy view over a
//! pair slice.

use crate::record::PairRecord;

/// A partition of a pair stream into fixed-size blocks.
///
/// The final partial block (fewer than `block_size` pairs) is *dropped*,
/// mirroring the paper's fixed-size trials; an analysis block with only a
/// handful of pairs would produce meaningless coverage values.
#[derive(Debug, Clone, Copy)]
pub struct Blocks<'a> {
    pairs: &'a [PairRecord],
    block_size: usize,
}

impl<'a> Blocks<'a> {
    /// Creates a block view with the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(pairs: &'a [PairRecord], block_size: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        Blocks { pairs, block_size }
    }

    /// Number of complete blocks.
    pub fn len(&self) -> usize {
        self.pairs.len() / self.block_size
    }

    /// Whether there are no complete blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Block `i` (zero-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &'a [PairRecord] {
        assert!(
            i < self.len(),
            "block index {i} out of range ({})",
            self.len()
        );
        &self.pairs[i * self.block_size..(i + 1) * self.block_size]
    }

    /// Iterates over complete blocks in order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [PairRecord]> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Guid, HostId, QueryId};
    use arq_simkern::SimTime;

    fn pairs(n: usize) -> Vec<PairRecord> {
        (0..n)
            .map(|i| PairRecord {
                time: SimTime::from_ticks(i as u64),
                guid: Guid(i as u128),
                src: HostId(0),
                via: HostId(1),
                responder: HostId(2),
                query: QueryId(0),
            })
            .collect()
    }

    #[test]
    fn partitions_exactly() {
        let p = pairs(100);
        let b = Blocks::new(&p, 25);
        assert_eq!(b.len(), 4);
        assert_eq!(b.get(0).len(), 25);
        assert_eq!(b.get(3)[24].guid, Guid(99));
        assert_eq!(b.iter().count(), 4);
    }

    #[test]
    fn drops_trailing_partial_block() {
        let p = pairs(107);
        let b = Blocks::new(&p, 25);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        // 7 trailing pairs invisible.
        let total: usize = b.iter().map(|blk| blk.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn short_stream_has_no_blocks() {
        let p = pairs(9);
        let b = Blocks::new(&p, 10);
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_bounds_checked() {
        let p = pairs(20);
        Blocks::new(&p, 10).get(2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_block_size_rejected() {
        let p = pairs(5);
        Blocks::new(&p, 0);
    }

    #[test]
    fn blocks_are_contiguous_and_ordered() {
        let p = pairs(60);
        let b = Blocks::new(&p, 20);
        let mut last = 0u128;
        for blk in b.iter() {
            for rec in blk {
                assert!(rec.guid.0 >= last);
                last = rec.guid.0;
            }
        }
    }
}

/// A partition of a pair stream into fixed *time-window* blocks, the
/// paper's alternative framing ("a rule set is created by combining
/// query and reply messages seen within a fixed amount of time",
/// §III-B.3). Windows are half-open `[k·w, (k+1)·w)` intervals anchored
/// at the first pair's timestamp; empty windows are preserved as empty
/// slices so trial numbering stays aligned with wall time.
#[derive(Debug, Clone)]
pub struct TimeBlocks<'a> {
    pairs: &'a [PairRecord],
    /// start index of each window (length = window count + 1).
    bounds: Vec<usize>,
}

impl<'a> TimeBlocks<'a> {
    /// Partitions `pairs` (which must be time-sorted) into windows of
    /// `window` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero ticks or the input is not sorted by
    /// time.
    pub fn new(pairs: &'a [PairRecord], window: arq_simkern::time::Duration) -> Self {
        assert!(window.ticks() > 0, "window must be positive");
        assert!(
            pairs.windows(2).all(|w| w[0].time <= w[1].time),
            "pairs must be time-sorted"
        );
        let mut bounds = vec![0];
        if let Some(first) = pairs.first() {
            let origin = first.time.ticks();
            let w = window.ticks();
            let mut next_edge = origin + w;
            for (i, p) in pairs.iter().enumerate() {
                while p.time.ticks() >= next_edge {
                    bounds.push(i);
                    next_edge += w;
                }
            }
            bounds.push(pairs.len());
        }
        // An empty stream keeps bounds = [0]: zero windows.
        TimeBlocks { pairs, bounds }
    }

    /// Number of windows (the last, possibly partial one included).
    pub fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Whether the stream was empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Window `i`'s pairs (possibly empty).
    pub fn get(&self, i: usize) -> &'a [PairRecord] {
        assert!(
            i < self.len(),
            "window index {i} out of range ({})",
            self.len()
        );
        &self.pairs[self.bounds[i]..self.bounds[i + 1]]
    }

    /// Iterates over all windows in time order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [PairRecord]> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod time_tests {
    use super::*;
    use crate::record::{Guid, HostId, QueryId};
    use arq_simkern::time::Duration;
    use arq_simkern::SimTime;

    fn pair_at(t: u64) -> PairRecord {
        PairRecord {
            time: SimTime::from_ticks(t),
            guid: Guid(u128::from(t)),
            src: HostId(0),
            via: HostId(1),
            responder: HostId(2),
            query: QueryId(0),
        }
    }

    #[test]
    fn windows_split_on_time_not_count() {
        // 3 pairs early, 1 late: count-blocks would split 2/2, but
        // 10-tick windows split 3/1.
        let pairs = vec![pair_at(0), pair_at(3), pair_at(9), pair_at(15)];
        let tb = TimeBlocks::new(&pairs, Duration::from_ticks(10));
        assert_eq!(tb.len(), 2);
        assert_eq!(tb.get(0).len(), 3);
        assert_eq!(tb.get(1).len(), 1);
    }

    #[test]
    fn empty_windows_are_preserved() {
        let pairs = vec![pair_at(0), pair_at(35)];
        let tb = TimeBlocks::new(&pairs, Duration::from_ticks(10));
        // Windows [0,10) [10,20) [20,30) [30,40): two empties in between.
        assert_eq!(tb.len(), 4);
        assert_eq!(tb.get(0).len(), 1);
        assert_eq!(tb.get(1).len(), 0);
        assert_eq!(tb.get(2).len(), 0);
        assert_eq!(tb.get(3).len(), 1);
        let total: usize = tb.iter().map(<[PairRecord]>::len).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn boundary_pair_goes_to_next_window() {
        let pairs = vec![pair_at(0), pair_at(10)];
        let tb = TimeBlocks::new(&pairs, Duration::from_ticks(10));
        assert_eq!(tb.len(), 2);
        assert_eq!(tb.get(0).len(), 1);
        assert_eq!(tb.get(1).len(), 1);
    }

    #[test]
    fn empty_stream() {
        let tb = TimeBlocks::new(&[], Duration::from_ticks(10));
        assert!(tb.is_empty());
        assert_eq!(tb.len(), 0);
        assert_eq!(tb.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn rejects_unsorted_input() {
        let pairs = vec![pair_at(5), pair_at(1)];
        TimeBlocks::new(&pairs, Duration::from_ticks(10));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_window() {
        TimeBlocks::new(&[], Duration::from_ticks(0));
    }

    #[test]
    fn origin_anchored_at_first_pair() {
        let pairs = vec![pair_at(100), pair_at(105), pair_at(112)];
        let tb = TimeBlocks::new(&pairs, Duration::from_ticks(10));
        assert_eq!(tb.len(), 2);
        assert_eq!(tb.get(0).len(), 2); // [100, 110)
        assert_eq!(tb.get(1).len(), 1); // [110, 120)
    }
}
