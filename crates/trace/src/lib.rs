//! # arq-trace — query/reply traces and the trace database
//!
//! The paper's entire evaluation is trace-driven: a modified Gnutella node
//! recorded every query it received and every reply that came back over a
//! 7-day window, the records were cleaned (duplicate GUIDs from faulty
//! clients removed), joined into query–reply pairs, and chunked into
//! fixed-size *blocks* that the routing strategies consume.
//!
//! This crate is that machinery:
//!
//! * [`record`] — the trace schema: [`record::QueryRecord`] and
//!   [`record::ReplyRecord`] carry exactly the fields §IV-A lists
//!   (timestamp, GUID, forwarding neighbor, responding neighbor, responder
//!   host, file);
//! * [`db::TraceDb`] — the in-memory replacement for the paper's
//!   relational database: ingest, GUID-dedup cleaning, query↔reply join
//!   producing [`record::PairRecord`]s;
//! * [`blocks`] — fixed-size block partitioning of the pair stream;
//! * [`columns`] — columnar `(src, via)` views of a block for the
//!   mining hot path (dense host-id columns, packed `u64` pair keys);
//! * [`csvio`] — flat-file import/export so traces can be stored and
//!   exchanged;
//! * [`synth`] — the calibrated synthetic trace generator standing in for
//!   the (unavailable) 7-day Gnutella capture; see `DESIGN.md` §5 for the
//!   calibration story;
//! * [`stats`] — descriptive statistics over traces (unique hosts, pairs
//!   per host, answer ratio) used to sanity-check synthetic output against
//!   the paper's reported totals.

#![warn(missing_docs)]

pub mod blocks;
pub mod columns;
pub mod csvio;
pub mod db;
pub mod record;
pub mod stats;
pub mod synth;

pub use blocks::{Blocks, TimeBlocks};
pub use columns::{pack_pair, unpack_pair, PairColumns};
pub use db::TraceDb;
pub use record::{Guid, HostId, PairRecord, QueryId, QueryRecord, ReplyRecord};
pub use synth::{SynthConfig, SynthTrace};
