// Property tests require the external `proptest` crate; the feature is
// default-off so offline builds skip this file entirely.
#![cfg(feature = "proptest")]

//! Property-based tests for the trace substrate.

use arq_simkern::SimTime;
use arq_trace::csvio;
use arq_trace::record::{Guid, HostId, PairRecord, QueryId, QueryRecord, ReplyRecord};
use arq_trace::{Blocks, TraceDb};
use proptest::prelude::*;

fn arb_query() -> impl Strategy<Value = QueryRecord> {
    (0u64..10_000, 0u128..64, 0u32..32, 0u32..100).prop_map(|(t, g, h, q)| QueryRecord {
        time: SimTime::from_ticks(t),
        guid: Guid(g),
        from: HostId(h),
        query: QueryId(q),
    })
}

fn arb_reply() -> impl Strategy<Value = ReplyRecord> {
    (0u64..10_000, 0u128..64, 0u32..32, 0u32..500).prop_map(|(t, g, v, r)| ReplyRecord {
        time: SimTime::from_ticks(t),
        guid: Guid(g),
        via: HostId(v),
        responder: HostId(r),
        file: QueryId(0),
    })
}

fn arb_pair() -> impl Strategy<Value = PairRecord> {
    (0u128..1_000_000, 0u32..64, 0u32..64, 0u32..64, 0u32..512).prop_map(|(g, s, v, r, q)| {
        PairRecord {
            time: SimTime::from_ticks(g as u64),
            guid: Guid(g),
            src: HostId(s),
            via: HostId(v),
            responder: HostId(r),
            query: QueryId(q),
        }
    })
}

proptest! {
    /// Cleaning leaves at most one query per GUID, keeps the earliest,
    /// and is idempotent.
    #[test]
    fn clean_dedups_and_is_idempotent(
        queries in proptest::collection::vec(arb_query(), 0..200),
        replies in proptest::collection::vec(arb_reply(), 0..200),
    ) {
        let mut db = TraceDb::new();
        db.extend(queries.clone(), replies);
        let report = db.clean();
        // One query per GUID.
        let mut guids = std::collections::HashSet::new();
        for q in db.queries() {
            prop_assert!(guids.insert(q.guid), "duplicate GUID survived");
        }
        // The survivor is the earliest use.
        for q in db.queries() {
            let earliest = queries
                .iter()
                .filter(|x| x.guid == q.guid)
                .map(|x| x.time)
                .min()
                .unwrap();
            prop_assert_eq!(q.time, earliest);
        }
        prop_assert_eq!(
            report.duplicate_queries as usize,
            queries.len() - db.query_count()
        );
        // Idempotence.
        let again = db.clean();
        prop_assert_eq!(again.duplicate_queries, 0);
        prop_assert_eq!(again.orphan_replies, 0);
    }

    /// Join produces exactly one pair per surviving reply, each pair's
    /// fields copied from its parents, ordered by time.
    #[test]
    fn join_pairs_replies(
        queries in proptest::collection::vec(arb_query(), 0..150),
        replies in proptest::collection::vec(arb_reply(), 0..150),
    ) {
        let mut db = TraceDb::new();
        db.extend(queries, replies);
        let (_, pairs) = db.clean_and_join();
        prop_assert_eq!(pairs.len(), db.reply_count());
        let by_guid: std::collections::HashMap<_, _> =
            db.queries().iter().map(|q| (q.guid, q)).collect();
        for p in &pairs {
            let q = by_guid[&p.guid];
            prop_assert_eq!(p.src, q.from);
            prop_assert_eq!(p.query, q.query);
            prop_assert!(p.time >= q.time);
        }
        prop_assert!(pairs.windows(2).all(|w| w[0].time <= w[1].time));
    }

    /// CSV round-trips are exact for arbitrary records.
    #[test]
    fn csv_roundtrips(
        pairs in proptest::collection::vec(arb_pair(), 0..100),
        queries in proptest::collection::vec(arb_query(), 0..50),
        replies in proptest::collection::vec(arb_reply(), 0..50),
    ) {
        let mut sorted = pairs;
        sorted.sort_by_key(|p| p.time);
        let mut buf = Vec::new();
        csvio::write_pairs(&mut buf, &sorted).unwrap();
        prop_assert_eq!(&csvio::read_pairs(&buf[..]).unwrap(), &sorted);

        let mut buf = Vec::new();
        csvio::write_raw(&mut buf, &queries, &replies).unwrap();
        let (q2, r2) = csvio::read_raw(&buf[..]).unwrap();
        prop_assert_eq!(q2, queries);
        prop_assert_eq!(r2, replies);
    }

    /// Block partitioning covers a prefix exactly, with no overlap.
    #[test]
    fn blocks_partition_prefix(
        pairs in proptest::collection::vec(arb_pair(), 0..300),
        block_size in 1usize..50,
    ) {
        let mut sorted = pairs;
        sorted.sort_by_key(|p| p.time);
        let blocks = Blocks::new(&sorted, block_size);
        let covered: usize = blocks.iter().map(<[PairRecord]>::len).sum();
        prop_assert_eq!(covered, (sorted.len() / block_size) * block_size);
        let flat: Vec<PairRecord> = blocks.iter().flatten().copied().collect();
        prop_assert_eq!(&flat[..], &sorted[..covered]);
    }
}

proptest! {
    /// Time windows partition the whole stream (nothing dropped, nothing
    /// duplicated) and every pair lands in the window its timestamp
    /// dictates.
    #[test]
    fn time_blocks_partition_everything(
        times in proptest::collection::vec(0u64..5_000, 0..300),
        window in 1u64..500,
    ) {
        let mut sorted = times;
        sorted.sort_unstable();
        let pairs: Vec<PairRecord> = sorted
            .iter()
            .enumerate()
            .map(|(i, &t)| PairRecord {
                time: SimTime::from_ticks(t),
                guid: Guid(i as u128),
                src: HostId(0),
                via: HostId(1),
                responder: HostId(2),
                query: QueryId(0),
            })
            .collect();
        let tb = arq_trace::TimeBlocks::new(&pairs, arq_simkern::time::Duration::from_ticks(window));
        let total: usize = tb.iter().map(<[PairRecord]>::len).sum();
        prop_assert_eq!(total, pairs.len());
        if let Some(first) = pairs.first() {
            let origin = first.time.ticks();
            for (w, blk) in tb.iter().enumerate() {
                for p in blk {
                    let idx = ((p.time.ticks() - origin) / window) as usize;
                    prop_assert_eq!(idx, w, "pair at t={} in window {}", p.time.ticks(), w);
                }
            }
        }
    }
}
