//! Apriori frequent-itemset mining (Agrawal–Imieliński–Swami, SIGMOD'93 —
//! reference \[15\] of the paper).
//!
//! Classic level-wise search: frequent k-itemsets are joined to form
//! (k+1)-candidates, candidates with an infrequent k-subset are pruned
//! (the *Apriori property*: support is anti-monotone), and the database
//! is scanned once per level to count the survivors.

use crate::transaction::{is_subset, ItemId, TransactionDb};
use std::collections::HashMap;

/// A frequent itemset with its absolute support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The items, sorted ascending.
    pub items: Vec<ItemId>,
    /// Absolute support (number of containing transactions).
    pub count: u64,
}

/// Mines all itemsets with `support_count >= min_count`.
///
/// Results are sorted by (length, items) so output order is deterministic
/// and easy to assert against.
pub fn apriori(db: &TransactionDb, min_count: u64) -> Vec<FrequentItemset> {
    assert!(
        min_count >= 1,
        "min_count of 0 would enumerate the power set"
    );
    let mut result: Vec<FrequentItemset> = Vec::new();

    // Level 1: count single items.
    let mut item_counts: HashMap<ItemId, u64> = HashMap::new();
    for t in db.transactions() {
        for &i in t {
            *item_counts.entry(i).or_insert(0) += 1;
        }
    }
    let mut current: Vec<FrequentItemset> = item_counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .map(|(i, count)| FrequentItemset {
            items: vec![i],
            count,
        })
        .collect();
    current.sort_by(|a, b| a.items.cmp(&b.items));

    while !current.is_empty() {
        result.extend(current.iter().cloned());
        let candidates = generate_candidates(&current);
        if candidates.is_empty() {
            break;
        }
        // Count candidates in one scan.
        let mut counts = vec![0u64; candidates.len()];
        for t in db.transactions() {
            for (ci, cand) in candidates.iter().enumerate() {
                if is_subset(cand, t) {
                    counts[ci] += 1;
                }
            }
        }
        current = candidates
            .into_iter()
            .zip(counts)
            .filter(|&(_, c)| c >= min_count)
            .map(|(items, count)| FrequentItemset { items, count })
            .collect();
        current.sort_by(|a, b| a.items.cmp(&b.items));
    }

    result.sort_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
    result
}

/// Joins frequent k-itemsets sharing a (k−1)-prefix and prunes candidates
/// with any infrequent k-subset.
fn generate_candidates(frequent: &[FrequentItemset]) -> Vec<Vec<ItemId>> {
    use std::collections::HashSet;
    let freq_set: HashSet<&[ItemId]> = frequent.iter().map(|f| f.items.as_slice()).collect();
    let k = match frequent.first() {
        Some(f) => f.items.len(),
        None => return Vec::new(),
    };
    let mut candidates = Vec::new();
    for (i, a) in frequent.iter().enumerate() {
        for b in &frequent[i + 1..] {
            // Both lists are sorted; join when first k-1 items agree.
            if a.items[..k - 1] != b.items[..k - 1] {
                break; // sorted order means no further prefix matches
            }
            let mut cand = a.items.clone();
            cand.push(*b.items.last().unwrap());
            // cand is sorted because b.last > a.last in sorted input.
            debug_assert!(cand.windows(2).all(|w| w[0] < w[1]));
            // Apriori prune: every k-subset must be frequent.
            let all_subsets_frequent = (0..cand.len()).all(|skip| {
                let sub: Vec<ItemId> = cand
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != skip)
                    .map(|(_, &x)| x)
                    .collect();
                freq_set.contains(sub.as_slice())
            });
            if all_subsets_frequent {
                candidates.push(cand);
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> TransactionDb {
        let mut db = TransactionDb::new();
        db.add_named(&["bread", "milk"]);
        db.add_named(&["bread", "diapers", "beer", "eggs"]);
        db.add_named(&["milk", "diapers", "beer", "cola"]);
        db.add_named(&["bread", "milk", "diapers", "beer"]);
        db.add_named(&["bread", "milk", "diapers", "cola"]);
        db
    }

    fn find<'a>(
        sets: &'a [FrequentItemset],
        names: &[&str],
        db: &TransactionDb,
    ) -> Option<&'a FrequentItemset> {
        let mut items: Vec<ItemId> = names.iter().map(|n| db.lookup(n).unwrap()).collect();
        items.sort_unstable();
        sets.iter().find(|f| f.items == items)
    }

    #[test]
    fn textbook_market_basket() {
        let db = market();
        let sets = apriori(&db, 3);
        // Frequent singles: bread(4), milk(4), diapers(4), beer(3).
        assert_eq!(find(&sets, &["bread"], &db).unwrap().count, 4);
        assert_eq!(find(&sets, &["beer"], &db).unwrap().count, 3);
        assert!(find(&sets, &["eggs"], &db).is_none());
        // The famous pair.
        assert_eq!(find(&sets, &["diapers", "beer"], &db).unwrap().count, 3);
        // {bread, milk} appears 3 times.
        assert_eq!(find(&sets, &["bread", "milk"], &db).unwrap().count, 3);
        // No triple reaches support 3.
        assert!(sets.iter().all(|f| f.items.len() <= 2));
    }

    #[test]
    fn min_count_one_finds_everything_present() {
        let mut db = TransactionDb::new();
        db.add_named(&["a", "b", "c"]);
        let sets = apriori(&db, 1);
        // 3 singles + 3 pairs + 1 triple.
        assert_eq!(sets.len(), 7);
        assert!(sets.iter().all(|f| f.count == 1));
    }

    #[test]
    fn supports_are_antimonotone() {
        let db = market();
        let sets = apriori(&db, 1);
        let by_items: HashMap<&[ItemId], u64> =
            sets.iter().map(|f| (f.items.as_slice(), f.count)).collect();
        for f in &sets {
            if f.items.len() >= 2 {
                for skip in 0..f.items.len() {
                    let sub: Vec<ItemId> = f
                        .items
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != skip)
                        .map(|(_, &x)| x)
                        .collect();
                    let parent = by_items[sub.as_slice()];
                    assert!(parent >= f.count, "anti-monotonicity violated");
                }
            }
        }
    }

    #[test]
    fn counts_match_direct_support_queries() {
        let db = market();
        for f in apriori(&db, 2) {
            assert_eq!(db.support_count(&f.items), f.count, "itemset {:?}", f.items);
        }
    }

    #[test]
    fn empty_db_yields_nothing() {
        let db = TransactionDb::new();
        assert!(apriori(&db, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "power set")]
    fn zero_min_count_rejected() {
        apriori(&TransactionDb::new(), 0);
    }

    #[test]
    fn unreachable_threshold_yields_nothing() {
        let db = market();
        assert!(apriori(&db, 100).is_empty());
    }
}
