//! Generalized rule antecedents (§VI extension).
//!
//! The paper proposes "adding dimensions such as the query strings during
//! rule generation". This module generalizes the host-pair miner to an
//! arbitrary antecedent key extracted from each pair record — e.g.
//! `(source host, query topic)` — while keeping identical support-pruning
//! and ranking semantics. The host-pair [`crate::pairs::RuleSet`] is
//! recovered with the key `|p| p.src`.
//!
//! Richer keys trade coverage for success: each rule is more specific
//! (higher success when it fires) but the support of each key shrinks, so
//! fewer queries are covered at a given threshold. Experiment E12
//! quantifies the trade-off.

use crate::measures::BlockMeasures;
use arq_trace::record::{HostId, PairRecord};
use std::collections::HashMap;
use std::hash::Hash;

/// A rule set whose antecedent is an arbitrary key.
#[derive(Debug, Clone)]
pub struct KeyedRuleSet<K> {
    rules: HashMap<K, Vec<(HostId, u64)>>,
    min_support: u64,
    source_pairs: usize,
}

impl<K: Eq + Hash + Copy> KeyedRuleSet<K> {
    /// An empty rule set.
    pub fn empty() -> Self {
        KeyedRuleSet {
            rules: HashMap::new(),
            min_support: 0,
            source_pairs: 0,
        }
    }

    /// Whether any rule has this antecedent key.
    pub fn has_antecedent(&self, key: K) -> bool {
        self.rules.contains_key(&key)
    }

    /// Ranked consequents for a key.
    pub fn consequents(&self, key: K) -> &[(HostId, u64)] {
        self.rules.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the rule `key → via` is present.
    pub fn matches(&self, key: K, via: HostId) -> bool {
        self.consequents(key).iter().any(|&(h, _)| h == via)
    }

    /// The top-`k` consequents for a key.
    pub fn top_k(&self, key: K, k: usize) -> impl Iterator<Item = HostId> + '_ {
        self.consequents(key).iter().take(k).map(|&(h, _)| h)
    }

    /// Total number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }

    /// Number of distinct antecedent keys.
    pub fn antecedent_count(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The support threshold used at mining time.
    pub fn min_support(&self) -> u64 {
        self.min_support
    }

    /// Pairs the set was mined from.
    pub fn source_pairs(&self) -> usize {
        self.source_pairs
    }
}

/// Mines a keyed rule set: counts `(key(p), p.via)` combinations and
/// prunes those below `min_support`, ranking consequents by descending
/// support (ties by host id).
pub fn mine_keyed<K, F>(block: &[PairRecord], key: F, min_support: u64) -> KeyedRuleSet<K>
where
    K: Eq + Hash + Copy,
    F: Fn(&PairRecord) -> K,
{
    assert!(min_support >= 1, "support threshold must be at least 1");
    let mut counts: HashMap<(K, HostId), u64> = HashMap::new();
    for p in block {
        *counts.entry((key(p), p.via)).or_insert(0) += 1;
    }
    build_keyed(counts, min_support, block.len())
}

/// Sharded [`mine_keyed`]: the block is split into contiguous chunks,
/// each counted on its own thread, and the per-shard subtotals are
/// sum-merged. Addition is commutative and the consequent ranking is a
/// total order, so the result is identical to the single-threaded miner
/// at any shard count. Arbitrary key types keep the general `HashMap`
/// tables here; the host-pair specialization has a packed-key fast path
/// in [`crate::pairs::PairMiner`].
pub fn mine_keyed_sharded<K, F>(
    block: &[PairRecord],
    key: F,
    min_support: u64,
    shards: usize,
) -> KeyedRuleSet<K>
where
    K: Eq + Hash + Copy + Send,
    F: Fn(&PairRecord) -> K + Sync,
{
    assert!(min_support >= 1, "support threshold must be at least 1");
    assert!(shards >= 1, "shard count must be at least 1");
    let shards = shards.min(block.len().max(1));
    if shards <= 1 {
        return mine_keyed(block, key, min_support);
    }
    let chunk = block.len().div_ceil(shards);
    let key = &key;
    let mut partials: Vec<HashMap<(K, HostId), u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = block
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let mut counts: HashMap<(K, HostId), u64> = HashMap::new();
                    for p in slice {
                        *counts.entry((key(p), p.via)).or_insert(0) += 1;
                    }
                    counts
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("keyed counting shard panicked"))
            .collect()
    });
    let mut merged = partials.swap_remove(0);
    for partial in partials {
        for (pair, count) in partial {
            *merged.entry(pair).or_insert(0) += count;
        }
    }
    build_keyed(merged, min_support, block.len())
}

/// Support pruning + deterministic consequent ranking over merged
/// counts — shared by the single-threaded and sharded keyed miners.
fn build_keyed<K: Eq + Hash + Copy>(
    counts: HashMap<(K, HostId), u64>,
    min_support: u64,
    source_pairs: usize,
) -> KeyedRuleSet<K> {
    let mut rules: HashMap<K, Vec<(HostId, u64)>> = HashMap::new();
    for ((k, via), count) in counts {
        if count >= min_support {
            rules.entry(k).or_default().push((via, count));
        }
    }
    for conseq in rules.values_mut() {
        conseq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    }
    KeyedRuleSet {
        rules,
        min_support,
        source_pairs,
    }
}

/// `RULESET-TEST` for keyed rules: same unique-query semantics as
/// [`crate::measures::ruleset_test`], with the antecedent taken from
/// `key(p)`.
pub fn keyed_ruleset_test<K, F>(
    rules: &KeyedRuleSet<K>,
    block: &[PairRecord],
    key: F,
) -> BlockMeasures
where
    K: Eq + Hash + Copy,
    F: Fn(&PairRecord) -> K,
{
    #[derive(Default)]
    struct PerQuery {
        covered: bool,
        success: bool,
        seen: bool,
    }
    let mut per_query: HashMap<arq_trace::record::Guid, PerQuery> =
        HashMap::with_capacity(block.len());
    for p in block {
        let k = key(p);
        let entry = per_query.entry(p.guid).or_default();
        if !entry.seen {
            entry.seen = true;
            entry.covered = rules.has_antecedent(k);
        }
        if entry.covered && !entry.success && rules.matches(k, p.via) {
            entry.success = true;
        }
    }
    let mut m = BlockMeasures::default();
    for pq in per_query.values() {
        m.total += 1;
        if pq.covered {
            m.covered += 1;
            if pq.success {
                m.successes += 1;
            }
        }
    }
    m
}

/// The `(source host, topic)` key the topic-dimension experiments use,
/// assuming the workspace's query-id convention (`topic << 12 | rank`,
/// as produced by the synthetic generator).
pub fn src_topic_key(p: &PairRecord) -> (HostId, u32) {
    (p.src, p.query.0 >> 12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::mine_pairs;
    use arq_simkern::SimTime;
    use arq_trace::record::{Guid, QueryId};

    fn pair(i: u64, src: u32, via: u32, topic: u32) -> PairRecord {
        PairRecord {
            time: SimTime::from_ticks(i),
            guid: Guid(u128::from(i)),
            src: HostId(src),
            via: HostId(via),
            responder: HostId(0),
            query: QueryId(topic << 12 | (i as u32 % 8)),
        }
    }

    /// Host 1 uses via 10 for topic 0 and via 11 for topic 1.
    fn topical_block(start: u64, n: usize) -> Vec<PairRecord> {
        (0..n as u64)
            .map(|i| {
                let topic = (i % 2) as u32;
                pair(start + i, 1, 10 + topic, topic)
            })
            .collect()
    }

    #[test]
    fn src_key_matches_plain_miner() {
        let block = topical_block(0, 100);
        let keyed = mine_keyed(&block, |p| p.src, 5);
        let plain = mine_pairs(&block, 5);
        assert_eq!(keyed.rule_count(), plain.rule_count());
        for (src, via, count) in plain.iter() {
            assert!(keyed.matches(src, via));
            let kc = keyed
                .consequents(src)
                .iter()
                .find(|&&(h, _)| h == via)
                .unwrap()
                .1;
            assert_eq!(kc, count);
        }
        // Measures agree too.
        let test_block = topical_block(1_000, 60);
        let mk = keyed_ruleset_test(&keyed, &test_block, |p| p.src);
        let mp = crate::measures::ruleset_test(&plain, &test_block);
        assert_eq!(mk, mp);
    }

    #[test]
    fn topic_key_disambiguates_routes() {
        let block = topical_block(0, 100);
        let keyed = mine_keyed(&block, src_topic_key, 5);
        // Per (src, topic) there is exactly one consequent.
        assert!(keyed.matches((HostId(1), 0), HostId(10)));
        assert!(!keyed.matches((HostId(1), 0), HostId(11)));
        assert!(keyed.matches((HostId(1), 1), HostId(11)));
        assert_eq!(keyed.antecedent_count(), 2);
        // The plain miner lumps both routes under one antecedent.
        let plain = mine_pairs(&block, 5);
        assert_eq!(plain.consequents(HostId(1)).len(), 2);
    }

    #[test]
    fn topic_rules_have_perfect_success_on_topical_traffic() {
        let keyed = mine_keyed(&topical_block(0, 200), src_topic_key, 5);
        let m = keyed_ruleset_test(&keyed, &topical_block(1_000, 100), src_topic_key);
        assert_eq!(m.coverage(), 1.0);
        assert_eq!(m.success(), 1.0);
        // Top-1 routing per (src, topic) would always succeed, whereas
        // top-1 host-pair routing can pick the wrong topic's via.
        let top: Vec<HostId> = keyed.top_k((HostId(1), 0), 1).collect();
        assert_eq!(top, vec![HostId(10)]);
    }

    #[test]
    fn specific_keys_lose_coverage_at_equal_threshold() {
        // Both topics answered via the same neighbor: the plain miner
        // consolidates 100 observations into one rule, while the keyed
        // miner splits them 50/50 across two antecedents — so a threshold
        // of 60 keeps the plain rule but prunes every keyed rule. This is
        // the coverage-vs-specificity trade-off E12 measures.
        let block: Vec<PairRecord> = (0..100u64)
            .map(|i| pair(i, 1, 10, (i % 2) as u32))
            .collect();
        let plain = mine_pairs(&block, 60);
        let keyed = mine_keyed(&block, src_topic_key, 60);
        assert_eq!(plain.rule_count(), 1);
        assert!(keyed.is_empty(), "diluted keyed rules survived");
    }

    #[test]
    fn sharded_keyed_matches_single_threaded() {
        let block = topical_block(0, 500);
        for shards in [1, 2, 3, 7] {
            let sharded = mine_keyed_sharded(&block, src_topic_key, 5, shards);
            let plain = mine_keyed(&block, src_topic_key, 5);
            assert_eq!(sharded.rule_count(), plain.rule_count(), "{shards} shards");
            assert_eq!(sharded.antecedent_count(), plain.antecedent_count());
            for key in [(HostId(1), 0), (HostId(1), 1)] {
                assert_eq!(sharded.consequents(key), plain.consequents(key));
            }
            assert_eq!(sharded.source_pairs(), plain.source_pairs());
            assert_eq!(sharded.min_support(), plain.min_support());
        }
        // Empty block: no shard ever sees work.
        let empty = mine_keyed_sharded(&[], src_topic_key, 1, 4);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_inputs() {
        let keyed: KeyedRuleSet<HostId> = KeyedRuleSet::empty();
        assert!(keyed.is_empty());
        assert!(!keyed.has_antecedent(HostId(0)));
        let mined = mine_keyed(&[], |p: &PairRecord| p.src, 1);
        assert!(mined.is_empty());
        let m = keyed_ruleset_test(&mined, &[], |p: &PairRecord| p.src);
        assert_eq!(m.coverage(), 0.0);
    }
}
