//! Eclat frequent-itemset mining (Zaki, 2000).
//!
//! The third of the classic frequent-itemset algorithms, completing the
//! family next to [`crate::apriori`] and [`crate::fpgrowth`]. Eclat works
//! on the *vertical* representation — for each item, the sorted list of
//! transaction ids containing it — and extends itemsets depth-first by
//! intersecting tid-lists, so support counting is a merge-scan instead
//! of a database pass. It excels when tid-lists are short relative to
//! the transaction count (sparse data), and the cross-checks in the
//! test suite assert it produces exactly the same output as the other
//! two miners.

use crate::apriori::FrequentItemset;
use crate::transaction::{ItemId, TransactionDb};
use std::collections::HashMap;

/// Mines all itemsets with `support_count >= min_count` via Eclat.
///
/// Output ordering matches [`crate::apriori::apriori`] and
/// [`crate::fpgrowth::fpgrowth`], so results compare with `assert_eq!`.
pub fn eclat(db: &TransactionDb, min_count: u64) -> Vec<FrequentItemset> {
    assert!(
        min_count >= 1,
        "min_count of 0 would enumerate the power set"
    );

    // Build the vertical representation.
    let mut tidlists: HashMap<ItemId, Vec<u32>> = HashMap::new();
    for (tid, t) in db.transactions().iter().enumerate() {
        for &item in t {
            tidlists.entry(item).or_default().push(tid as u32);
        }
    }
    // Frequent single items, sorted for deterministic recursion order.
    let mut items: Vec<(ItemId, Vec<u32>)> = tidlists
        .into_iter()
        .filter(|(_, tids)| tids.len() as u64 >= min_count)
        .collect();
    items.sort_by_key(|(i, _)| *i);

    let mut result = Vec::new();
    // Depth-first extension: each prefix carries its tid-list.
    extend(&[], &items, min_count, &mut result);
    result.sort_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
    result
}

fn extend(
    prefix: &[ItemId],
    candidates: &[(ItemId, Vec<u32>)],
    min_count: u64,
    out: &mut Vec<FrequentItemset>,
) {
    for (i, (item, tids)) in candidates.iter().enumerate() {
        let mut items = prefix.to_vec();
        items.push(*item);
        out.push(FrequentItemset {
            items: items.clone(),
            count: tids.len() as u64,
        });
        // Build this itemset's conditional candidates by intersecting
        // with every later item.
        let mut next: Vec<(ItemId, Vec<u32>)> = Vec::new();
        for (other, other_tids) in &candidates[i + 1..] {
            let inter = intersect(tids, other_tids);
            if inter.len() as u64 >= min_count {
                next.push((*other, inter));
            }
        }
        if !next.is_empty() {
            extend(&items, &next, min_count, out);
        }
    }
}

/// Merge-intersection of two sorted tid-lists.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use crate::fpgrowth::fpgrowth;

    fn market() -> TransactionDb {
        let mut db = TransactionDb::new();
        db.add_named(&["bread", "milk"]);
        db.add_named(&["bread", "diapers", "beer", "eggs"]);
        db.add_named(&["milk", "diapers", "beer", "cola"]);
        db.add_named(&["bread", "milk", "diapers", "beer"]);
        db.add_named(&["bread", "milk", "diapers", "cola"]);
        db
    }

    #[test]
    fn intersect_merges_sorted_lists() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1, 2]), Vec::<u32>::new());
        assert_eq!(intersect(&[4], &[4]), vec![4]);
    }

    #[test]
    fn agrees_with_apriori_and_fpgrowth_on_market_basket() {
        let db = market();
        for min_count in 1..=5 {
            let a = apriori(&db, min_count);
            let e = eclat(&db, min_count);
            let f = fpgrowth(&db, min_count);
            assert_eq!(a, e, "eclat vs apriori at min_count={min_count}");
            assert_eq!(e, f, "eclat vs fpgrowth at min_count={min_count}");
        }
    }

    #[test]
    fn agrees_on_random_databases() {
        use arq_simkern::Rng64;
        let mut rng = Rng64::seed_from(4321);
        for trial in 0..20 {
            let mut db = TransactionDb::new();
            for _ in 0..40 {
                let len = 1 + rng.index(5);
                let items: Vec<ItemId> = (0..len).map(|_| ItemId(rng.below(10) as u32)).collect();
                db.add(items);
            }
            for min_count in [1u64, 3, 6] {
                assert_eq!(
                    apriori(&db, min_count),
                    eclat(&db, min_count),
                    "trial {trial}, min_count {min_count}"
                );
            }
        }
    }

    #[test]
    fn empty_and_unreachable() {
        assert!(eclat(&TransactionDb::new(), 1).is_empty());
        assert!(eclat(&market(), 100).is_empty());
    }

    #[test]
    fn counts_are_exact() {
        let db = market();
        for f in eclat(&db, 2) {
            assert_eq!(db.support_count(&f.items), f.count);
        }
    }
}
