//! FP-Growth frequent-itemset mining (Han–Pei–Yin).
//!
//! Builds a compressed prefix tree (FP-tree) of the transaction database
//! ordered by descending item frequency, then recursively mines
//! conditional trees. Needs exactly two database scans and no candidate
//! generation — dramatically faster than Apriori on dense data, and the
//! property tests in this module (plus `tests/` cross-checks) assert it
//! produces *identical* output.

use crate::apriori::FrequentItemset;
use crate::transaction::{ItemId, TransactionDb};
use std::collections::HashMap;

#[derive(Debug)]
struct Node {
    item: ItemId,
    count: u64,
    parent: usize,         // index into arena; 0 is the root sentinel
    children: Vec<usize>,  // arena indices
    next_same_item: usize, // header-list chaining; 0 = none
}

struct FpTree {
    arena: Vec<Node>,
    // item -> index of first node with that item (header table)
    header: HashMap<ItemId, usize>,
    // item -> total count across the tree
    item_totals: HashMap<ItemId, u64>,
}

impl FpTree {
    fn new() -> Self {
        // arena[0] is the root sentinel.
        FpTree {
            arena: vec![Node {
                item: ItemId(u32::MAX),
                count: 0,
                parent: 0,
                children: Vec::new(),
                next_same_item: 0,
            }],
            header: HashMap::new(),
            item_totals: HashMap::new(),
        }
    }

    /// Inserts a frequency-ordered transaction with multiplicity `count`.
    fn insert(&mut self, items: &[ItemId], count: u64) {
        let mut cur = 0usize;
        for &item in items {
            *self.item_totals.entry(item).or_insert(0) += count;
            let child = self.arena[cur]
                .children
                .iter()
                .copied()
                .find(|&c| self.arena[c].item == item);
            cur = match child {
                Some(c) => {
                    self.arena[c].count += count;
                    c
                }
                None => {
                    let idx = self.arena.len();
                    let first = self.header.get(&item).copied().unwrap_or(0);
                    self.arena.push(Node {
                        item,
                        count,
                        parent: cur,
                        children: Vec::new(),
                        next_same_item: first,
                    });
                    self.header.insert(item, idx);
                    self.arena[cur].children.push(idx);
                    idx
                }
            };
        }
    }

    /// The conditional pattern base of `item`: (prefix path, count) pairs.
    fn conditional_base(&self, item: ItemId) -> Vec<(Vec<ItemId>, u64)> {
        let mut base = Vec::new();
        let mut node_idx = self.header.get(&item).copied().unwrap_or(0);
        while node_idx != 0 {
            let node = &self.arena[node_idx];
            let mut path = Vec::new();
            let mut p = node.parent;
            while p != 0 {
                path.push(self.arena[p].item);
                p = self.arena[p].parent;
            }
            path.reverse();
            if !path.is_empty() {
                base.push((path, node.count));
            }
            node_idx = node.next_same_item;
        }
        base
    }
}

/// Mines all itemsets with `support_count >= min_count` via FP-Growth.
///
/// Output is sorted identically to [`crate::apriori::apriori`], so the two
/// can be compared with `assert_eq!`.
pub fn fpgrowth(db: &TransactionDb, min_count: u64) -> Vec<FrequentItemset> {
    assert!(
        min_count >= 1,
        "min_count of 0 would enumerate the power set"
    );

    // Scan 1: item frequencies.
    let mut freq: HashMap<ItemId, u64> = HashMap::new();
    for t in db.transactions() {
        for &i in t {
            *freq.entry(i).or_insert(0) += 1;
        }
    }

    // Scan 2: insert transactions with infrequent items stripped, ordered
    // by (desc frequency, asc id) for maximal sharing.
    let mut tree = FpTree::new();
    for t in db.transactions() {
        let mut items: Vec<ItemId> = t.iter().copied().filter(|i| freq[i] >= min_count).collect();
        items.sort_by_key(|i| (std::cmp::Reverse(freq[i]), *i));
        if !items.is_empty() {
            tree.insert(&items, 1);
        }
    }

    let mut result = Vec::new();
    mine(&tree, &[], min_count, &mut result);
    result.sort_by(|a: &FrequentItemset, b| {
        (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items))
    });
    result
}

fn mine(tree: &FpTree, suffix: &[ItemId], min_count: u64, out: &mut Vec<FrequentItemset>) {
    // Process items in ascending total order (classic FP-Growth order).
    let mut items: Vec<(ItemId, u64)> = tree
        .item_totals
        .iter()
        .map(|(&i, &c)| (i, c))
        .filter(|&(_, c)| c >= min_count)
        .collect();
    items.sort_by_key(|&(i, c)| (c, i));

    for (item, count) in items {
        let mut pattern = vec![item];
        pattern.extend_from_slice(suffix);
        pattern.sort_unstable();
        out.push(FrequentItemset {
            items: pattern.clone(),
            count,
        });

        // Build the conditional tree for this item and recurse.
        let base = tree.conditional_base(item);
        let mut cond_freq: HashMap<ItemId, u64> = HashMap::new();
        for (path, c) in &base {
            for &i in path {
                *cond_freq.entry(i).or_insert(0) += c;
            }
        }
        let mut cond_tree = FpTree::new();
        let mut any = false;
        for (path, c) in &base {
            let mut items: Vec<ItemId> = path
                .iter()
                .copied()
                .filter(|i| cond_freq[i] >= min_count)
                .collect();
            items.sort_by_key(|i| (std::cmp::Reverse(cond_freq[i]), *i));
            if !items.is_empty() {
                cond_tree.insert(&items, *c);
                any = true;
            }
        }
        if any {
            let mut new_suffix = vec![item];
            new_suffix.extend_from_slice(suffix);
            mine(&cond_tree, &new_suffix, min_count, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;

    fn market() -> TransactionDb {
        let mut db = TransactionDb::new();
        db.add_named(&["bread", "milk"]);
        db.add_named(&["bread", "diapers", "beer", "eggs"]);
        db.add_named(&["milk", "diapers", "beer", "cola"]);
        db.add_named(&["bread", "milk", "diapers", "beer"]);
        db.add_named(&["bread", "milk", "diapers", "cola"]);
        db
    }

    #[test]
    fn agrees_with_apriori_on_market_basket() {
        let db = market();
        for min_count in 1..=5 {
            let a = apriori(&db, min_count);
            let f = fpgrowth(&db, min_count);
            assert_eq!(a, f, "disagreement at min_count={min_count}");
        }
    }

    #[test]
    fn agrees_with_apriori_on_random_dbs() {
        use arq_simkern::Rng64;
        let mut rng = Rng64::seed_from(1234);
        for trial in 0..20 {
            let mut db = TransactionDb::new();
            let n_items = 8;
            let n_tx = 30;
            for _ in 0..n_tx {
                let len = 1 + rng.index(5);
                let items: Vec<ItemId> = (0..len)
                    .map(|_| ItemId(rng.below(n_items) as u32))
                    .collect();
                db.add(items);
            }
            for min_count in [1u64, 2, 4, 8] {
                let a = apriori(&db, min_count);
                let f = fpgrowth(&db, min_count);
                assert_eq!(a, f, "trial {trial}, min_count {min_count}");
            }
        }
    }

    #[test]
    fn single_transaction() {
        let mut db = TransactionDb::new();
        db.add_named(&["x", "y"]);
        let f = fpgrowth(&db, 1);
        assert_eq!(f.len(), 3); // {x}, {y}, {x,y}
        assert!(f.iter().all(|s| s.count == 1));
    }

    #[test]
    fn empty_db() {
        assert!(fpgrowth(&TransactionDb::new(), 1).is_empty());
    }

    #[test]
    fn duplicate_transactions_accumulate() {
        let mut db = TransactionDb::new();
        for _ in 0..10 {
            db.add_named(&["a", "b"]);
        }
        let f = fpgrowth(&db, 10);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|s| s.count == 10));
    }
}
