//! Lossy Counting over query–reply pair streams.
//!
//! The paper points at stream mining (§VI, citing Babcock et al. \[18\])
//! as the way to maintain rules without periodic regeneration. Lossy
//! Counting (Manku & Motwani, VLDB'02) is the classic algorithm for
//! frequent items over a stream with bounded memory and a deterministic
//! error guarantee:
//!
//! * the stream is processed in buckets of width `⌈1/ε⌉`;
//! * each tracked item keeps a count and the bucket it was inserted in;
//! * at every bucket boundary, items whose `count + insertion_bucket ≤
//!   current_bucket` are evicted;
//! * any item with true frequency ≥ `εN` is guaranteed to be tracked,
//!   and reported counts undershoot true counts by at most `εN`.
//!
//! Applied here to `(src, via)` associations, it yields rule sets whose
//! support threshold adapts to the stream length — an alternative to the
//! exponential-decay maintainer with hard error bounds instead of
//! recency weighting. Experiment E14 compares the two.

use crate::pairs::RuleSet;
use arq_trace::record::{HostId, PairRecord};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Entry {
    count: u64,
    /// Maximum possible undercount (`Δ` in the paper): the bucket id at
    /// insertion time.
    delta: u64,
}

/// A complete, canonically ordered capture of a [`LossyPairCounts`] —
/// the checkpointable analogue of
/// [`crate::incremental::DecayedSnapshot`]. Entries sort by `(src,
/// via)`; `count`/`delta` are the Manku–Motwani per-item state, so a
/// restored counter evicts and reports exactly as the original would.
#[derive(Debug, Clone, PartialEq)]
pub struct LossySnapshot {
    /// The configured error bound.
    pub epsilon: f64,
    /// Current bucket id.
    pub current_bucket: u64,
    /// Stream length so far.
    pub seen: u64,
    /// `(src, via, count, delta)` rows, sorted.
    pub entries: Vec<(HostId, HostId, u64, u64)>,
}

/// Lossy Counting over `(src, via)` associations.
#[derive(Debug, Clone)]
pub struct LossyPairCounts {
    epsilon: f64,
    bucket_width: u64,
    current_bucket: u64,
    seen: u64,
    counts: HashMap<HostId, HashMap<HostId, Entry>>,
    entries: usize,
}

impl LossyPairCounts {
    /// Creates a counter with error bound `epsilon` (e.g. `0.0001` for
    /// ±0.01 % of the stream length).
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        LossyPairCounts {
            epsilon,
            bucket_width: (1.0 / epsilon).ceil() as u64,
            current_bucket: 1,
            seen: 0,
            counts: HashMap::new(),
            entries: 0,
        }
    }

    /// The configured error bound.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Stream length so far.
    pub fn observations(&self) -> u64 {
        self.seen
    }

    /// Number of tracked associations (bounded by `O(1/ε · log(εN))`).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Feeds one association.
    pub fn observe(&mut self, src: HostId, via: HostId) {
        self.seen += 1;
        let bucket = self.current_bucket;
        let inner = self.counts.entry(src).or_default();
        let before = inner.len();
        inner
            .entry(via)
            .and_modify(|e| e.count += 1)
            .or_insert(Entry {
                count: 1,
                delta: bucket - 1,
            });
        self.entries += inner.len() - before;
        if self.seen.is_multiple_of(self.bucket_width) {
            // Bucket boundary: evict infrequent entries.
            let b = self.current_bucket;
            for inner in self.counts.values_mut() {
                inner.retain(|_, e| e.count + e.delta > b);
            }
            self.counts.retain(|_, inner| !inner.is_empty());
            self.entries = self.counts.values().map(HashMap::len).sum();
            self.current_bucket += 1;
        }
    }

    /// Feeds a trace pair.
    pub fn observe_pair(&mut self, p: &PairRecord) {
        self.observe(p.src, p.via);
    }

    /// Lower-bound count for one association (true count is within
    /// `+ εN` of this).
    pub fn count(&self, src: HostId, via: HostId) -> u64 {
        self.counts
            .get(&src)
            .and_then(|inner| inner.get(&via))
            .map(|e| e.count)
            .unwrap_or(0)
    }

    /// Whether `src` has any association with `count ≥ threshold`.
    pub fn covered(&self, src: HostId, threshold: u64) -> bool {
        self.counts
            .get(&src)
            .is_some_and(|inner| inner.values().any(|e| e.count >= threshold))
    }

    /// The top-`k` consequents of `src` with count ≥ `threshold`, ranked
    /// by descending count (ties by host id).
    pub fn top_k(&self, src: HostId, k: usize, threshold: u64) -> Vec<HostId> {
        let Some(inner) = self.counts.get(&src) else {
            return Vec::new();
        };
        let mut ranked: Vec<(HostId, u64)> = inner
            .iter()
            .filter(|(_, e)| e.count >= threshold)
            .map(|(&via, e)| (via, e.count))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.into_iter().take(k).map(|(h, _)| h).collect()
    }

    /// Whether the rule `{src} → {via}` meets the threshold.
    pub fn matches(&self, src: HostId, via: HostId, threshold: u64) -> bool {
        self.count(src, via) >= threshold
    }

    /// [`Self::top_k`] with an additional minimum-confidence gate: the
    /// confidence of `{src} → {via}` is its reported count over the
    /// reported total across *all* of `src`'s consequents. Both numbers
    /// are the Manku–Motwani lower bounds already stored, so the gate is
    /// computed on the fly and never mutates counter state.
    /// `min_confidence = 0.0` reduces exactly to [`Self::top_k`].
    pub fn top_k_confident(
        &self,
        src: HostId,
        k: usize,
        threshold: u64,
        min_confidence: f64,
    ) -> Vec<HostId> {
        let Some(inner) = self.counts.get(&src) else {
            return Vec::new();
        };
        let total: u64 = inner.values().map(|e| e.count).sum();
        if total == 0 {
            return Vec::new();
        }
        let mut ranked: Vec<(HostId, u64)> = inner
            .iter()
            .filter(|(_, e)| {
                e.count >= threshold && e.count as f64 / total as f64 >= min_confidence - 1e-9
            })
            .map(|(&via, e)| (via, e.count))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.into_iter().take(k).map(|(h, _)| h).collect()
    }

    /// Captures the complete counter state for checkpointing; the exact
    /// inverse of [`Self::restore`].
    pub fn snapshot(&self) -> LossySnapshot {
        let mut entries: Vec<(HostId, HostId, u64, u64)> = self
            .counts
            .iter()
            .flat_map(|(&src, inner)| {
                inner
                    .iter()
                    .map(move |(&via, &Entry { count, delta })| (src, via, count, delta))
            })
            .collect();
        entries.sort();
        LossySnapshot {
            epsilon: self.epsilon,
            current_bucket: self.current_bucket,
            seen: self.seen,
            entries,
        }
    }

    /// Rebuilds a counter from a [`LossySnapshot`]. Feeding the restored
    /// counter the same observation suffix as the snapshotted original
    /// produces identical counts, evictions, and rule sets.
    pub fn restore(snap: &LossySnapshot) -> Self {
        let mut c = LossyPairCounts::new(snap.epsilon);
        c.current_bucket = snap.current_bucket;
        c.seen = snap.seen;
        for &(src, via, count, delta) in &snap.entries {
            c.counts
                .entry(src)
                .or_default()
                .insert(via, Entry { count, delta });
        }
        c.entries = snap.entries.len();
        c
    }

    /// Materializes a [`RuleSet`] of all associations whose *guaranteed*
    /// frequency is at least `support` (i.e. reported count ≥ support −
    /// εN, the paper's output rule with `s = support/N`).
    pub fn ruleset(&self, support: u64) -> RuleSet {
        let slack = (self.epsilon * self.seen as f64) as u64;
        let floor = support.saturating_sub(slack).max(1);
        let rows = self
            .counts
            .iter()
            .flat_map(|(&src, inner)| inner.iter().map(move |(&via, e)| (src, via, e.count)));
        RuleSet::from_rows(rows, floor, self.seen as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_for_heavy_hitters() {
        let mut c = LossyPairCounts::new(0.01); // buckets of 100
        for i in 0..10_000u32 {
            // (1, 10) appears every other observation -> frequency 0.5.
            if i % 2 == 0 {
                c.observe(HostId(1), HostId(10));
            } else {
                c.observe(HostId(i % 50 + 100), HostId(0)); // light noise
            }
        }
        let reported = c.count(HostId(1), HostId(10));
        let true_count = 5_000;
        let slack = (0.01 * 10_000.0) as u64;
        assert!(reported <= true_count);
        assert!(
            reported + slack >= true_count,
            "undercount beyond guarantee: {reported}"
        );
        assert!(c.covered(HostId(1), 4_000));
    }

    #[test]
    fn light_items_are_evicted() {
        let mut c = LossyPairCounts::new(0.01);
        c.observe(HostId(7), HostId(8)); // appears once, then never again
        for i in 0..1_000u32 {
            c.observe(HostId(1), HostId(i % 3 + 20));
        }
        assert_eq!(c.count(HostId(7), HostId(8)), 0, "one-off not evicted");
        assert!(!c.covered(HostId(7), 1));
    }

    #[test]
    fn memory_stays_bounded() {
        let mut c = LossyPairCounts::new(0.001);
        // 200k distinct one-off associations plus one heavy hitter.
        for i in 0..200_000u32 {
            c.observe(HostId(i), HostId(i));
            c.observe(HostId(0), HostId(1));
        }
        // Without eviction this would hold 200k+1 entries.
        assert!(c.len() < 10_000, "tracked {} entries", c.len());
        assert!(c.count(HostId(0), HostId(1)) > 190_000);
    }

    #[test]
    fn no_false_negatives_at_guaranteed_support() {
        // Any association with true frequency >= eps*N must be tracked.
        let mut c = LossyPairCounts::new(0.02);
        let n = 5_000u32;
        for i in 0..n {
            match i % 20 {
                0..=9 => c.observe(HostId(1), HostId(10)),   // 50%
                10..=12 => c.observe(HostId(2), HostId(20)), // 15%
                13 => c.observe(HostId(3), HostId(30)),      // 5%
                _ => c.observe(HostId(100 + i), HostId(0)),  // singletons
            }
        }
        // All three have frequency >= 2% and must be present.
        assert!(c.count(HostId(1), HostId(10)) > 0);
        assert!(c.count(HostId(2), HostId(20)) > 0);
        assert!(c.count(HostId(3), HostId(30)) > 0);
    }

    #[test]
    fn top_k_confident_prunes_low_confidence_consequents() {
        let mut c = LossyPairCounts::new(0.0001); // wide buckets: exact counts
        for _ in 0..70 {
            c.observe(HostId(1), HostId(10)); // confidence 0.7
        }
        for _ in 0..20 {
            c.observe(HostId(1), HostId(20)); // confidence 0.2
        }
        for _ in 0..10 {
            c.observe(HostId(1), HostId(30)); // confidence 0.1
        }
        assert_eq!(
            c.top_k_confident(HostId(1), 10, 1, 0.0),
            c.top_k(HostId(1), 10, 1)
        );
        assert_eq!(
            c.top_k_confident(HostId(1), 10, 1, 0.2),
            vec![HostId(10), HostId(20)]
        );
        assert_eq!(c.top_k_confident(HostId(1), 10, 1, 0.5), vec![HostId(10)]);
        assert!(c.top_k_confident(HostId(9), 3, 1, 0.5).is_empty());
    }

    /// Seeded property sweep mirroring the decayed maintainer's: the
    /// lossy `top_k_confident` is k-monotone and never admits a
    /// consequent below the support or confidence gates.
    #[test]
    fn top_k_monotone_and_gated_over_random_streams() {
        let mut rng = arq_simkern::Rng64::seed_from(0x0001_0551_2026);
        for _ in 0..50u64 {
            let mut c = LossyPairCounts::new(0.001);
            for _ in 0..(50 + rng.below(400)) {
                c.observe(
                    HostId(rng.below(5) as u32),
                    HostId(100 + rng.below(6) as u32),
                );
            }
            let support = 1 + rng.below(4);
            let minconf = rng.f64();
            for s in 0..5u32 {
                let src = HostId(s);
                let total: u64 = (0..6u32).map(|v| c.count(src, HostId(100 + v))).sum();
                for k in 1..5usize {
                    let small = c.top_k_confident(src, k, support, minconf);
                    let large = c.top_k_confident(src, k + 1, support, minconf);
                    assert!(large.len() >= small.len());
                    assert_eq!(&large[..small.len()], &small[..], "top-k not a prefix");
                    for &via in &large {
                        let v = c.count(src, via);
                        assert!(v >= support, "sub-support admitted");
                        assert!(
                            v as f64 / total as f64 >= minconf - 1e-9,
                            "sub-confidence admitted"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ruleset_materialization_applies_slack() {
        let mut c = LossyPairCounts::new(0.01);
        for _ in 0..500 {
            c.observe(HostId(1), HostId(10));
        }
        let rs = c.ruleset(400);
        assert!(rs.matches(HostId(1), HostId(10)));
        let strict = c.ruleset(10_000);
        assert!(strict.is_empty());
    }

    #[test]
    fn empty_counter() {
        let c = LossyPairCounts::new(0.1);
        assert!(c.is_empty());
        assert_eq!(c.count(HostId(0), HostId(0)), 0);
        assert_eq!(c.observations(), 0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        LossyPairCounts::new(0.0);
    }

    #[test]
    fn snapshot_restore_round_trips_exactly() {
        let mut c = LossyPairCounts::new(0.01);
        for i in 0..777u32 {
            c.observe(HostId(i % 7), HostId(100 + i % 5));
        }
        let snap = c.snapshot();
        let mut restored = LossyPairCounts::restore(&snap);
        assert_eq!(restored.snapshot(), snap, "snapshot not idempotent");
        assert_eq!(restored.observations(), c.observations());
        // Same suffix, same future: evictions at bucket boundaries and
        // the resulting rule sets stay identical.
        for i in 0..500u32 {
            c.observe(HostId(i), HostId(0));
            restored.observe(HostId(i), HostId(0));
        }
        assert_eq!(c.len(), restored.len(), "evictions diverged");
        assert_eq!(
            c.ruleset(20).digest(),
            restored.ruleset(20).digest(),
            "rule sets diverged after restore"
        );
    }
}
