//! RULESET-TEST: the paper's rule-*set* quality measures.
//!
//! Traditional support and confidence score individual rules; the paper
//! introduces two measures for a rule set as a whole (§III-B.2), both
//! evaluated against a *test block* of query–reply pairs:
//!
//! * **coverage** `α = n / N` (Eq. 1): `N` is the number of unique
//!   queries in the test block that received a response; `n` is how many
//!   of them come from a source host that appears as an antecedent;
//! * **success** `ρ = s / n` (Eq. 2): `s` is how many of the covered
//!   queries were answered through a neighbor that the matching rule
//!   names as consequent — i.e. routing by the rule would have reached
//!   the content.
//!
//! Uniqueness is by GUID: a query answered by several replies counts
//! once, and succeeds if *any* of its replies came via a rule consequent.

use crate::pairs::RuleSet;
use arq_trace::record::{Guid, PairRecord};
use std::collections::HashMap;

/// Counts from evaluating one rule set against one test block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockMeasures {
    /// `N`: unique responded queries in the block.
    pub total: u64,
    /// `n`: unique queries whose source matches an antecedent.
    pub covered: u64,
    /// `s`: covered queries answered via a rule consequent.
    pub successes: u64,
}

impl BlockMeasures {
    /// Coverage α = n / N (0 when the block is empty).
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }

    /// Success ρ = s / n (0 when nothing is covered).
    ///
    /// Eq. 2 is undefined at n = 0; this workspace's convention is to
    /// *report* ρ as 0.0 there (so series, report rows, and JSON never
    /// carry NaN), and to treat the measurement as missing wherever ρ
    /// feeds a decision — see [`success_opt`](Self::success_opt), which
    /// adaptive thresholds consume so an all-uncovered block cannot
    /// masquerade as a genuine ρ = 0 observation.
    pub fn success(&self) -> f64 {
        self.success_opt().unwrap_or(0.0)
    }

    /// Success ρ = s / n, or `None` when it is undefined because no
    /// query was covered (n = 0). The value, when present, is always a
    /// finite number in `[0, 1]`.
    pub fn success_opt(&self) -> Option<f64> {
        (self.covered > 0).then(|| self.successes as f64 / self.covered as f64)
    }

    /// Accumulates another block's counts (used for whole-run totals).
    pub fn merge(&mut self, other: &BlockMeasures) {
        self.total += other.total;
        self.covered += other.covered;
        self.successes += other.successes;
    }
}

/// Evaluates `rules` against `block` (the paper's `RULESET-TEST`).
pub fn ruleset_test(rules: &RuleSet, block: &[PairRecord]) -> BlockMeasures {
    // Group the block's pairs by query GUID. Insertion order of the map
    // does not matter: each query contributes independent counts.
    #[derive(Default)]
    struct PerQuery {
        covered: bool,
        success: bool,
        seen: bool,
    }
    let mut per_query: HashMap<Guid, PerQuery> = HashMap::with_capacity(block.len());
    for p in block {
        let entry = per_query.entry(p.guid).or_default();
        if !entry.seen {
            entry.seen = true;
            entry.covered = rules.has_antecedent(p.src);
        }
        if entry.covered && !entry.success && rules.matches(p.src, p.via) {
            entry.success = true;
        }
    }
    let mut m = BlockMeasures::default();
    for pq in per_query.values() {
        m.total += 1;
        if pq.covered {
            m.covered += 1;
            if pq.success {
                m.successes += 1;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::mine_pairs;
    use arq_simkern::SimTime;
    use arq_trace::record::{HostId, QueryId};

    fn pair(guid: u128, src: u32, via: u32) -> PairRecord {
        PairRecord {
            time: SimTime::from_ticks(guid as u64),
            guid: Guid(guid),
            src: HostId(src),
            via: HostId(via),
            responder: HostId(0),
            query: QueryId(0),
        }
    }

    /// Rules: 1 -> 10, 1 -> 11, 2 -> 20 (all with ample support).
    fn rules() -> RuleSet {
        let mut train = Vec::new();
        let mut g = 0u128;
        for _ in 0..5 {
            train.push(pair(g, 1, 10));
            g += 1;
            train.push(pair(g, 1, 11));
            g += 1;
            train.push(pair(g, 2, 20));
            g += 1;
        }
        mine_pairs(&train, 2)
    }

    #[test]
    fn coverage_and_success_basic() {
        let rs = rules();
        let block = vec![
            pair(100, 1, 10), // covered + success
            pair(101, 1, 99), // covered, miss
            pair(102, 2, 20), // covered + success
            pair(103, 7, 10), // uncovered
        ];
        let m = ruleset_test(&rs, &block);
        assert_eq!(
            m,
            BlockMeasures {
                total: 4,
                covered: 3,
                successes: 2
            }
        );
        assert!((m.coverage() - 0.75).abs() < 1e-12);
        assert!((m.success() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_replies_count_one_query() {
        let rs = rules();
        // One query (same GUID) answered three times, one via a rule hop.
        let block = vec![pair(5_000, 1, 99), pair(5_000, 1, 11), pair(5_000, 1, 98)];
        let m = ruleset_test(&rs, &block);
        assert_eq!(m.total, 1);
        assert_eq!(m.covered, 1);
        assert_eq!(m.successes, 1);
    }

    #[test]
    fn perfect_rule_set_on_its_own_block() {
        // A rule set mined from a block with threshold 1 covers and
        // succeeds on every query of that block.
        let block: Vec<PairRecord> = (0..50)
            .map(|i| pair(i as u128, (i % 5) as u32, (10 + i % 3) as u32))
            .collect();
        let rs = mine_pairs(&block, 1);
        let m = ruleset_test(&rs, &block);
        assert_eq!(m.coverage(), 1.0);
        assert_eq!(m.success(), 1.0);
    }

    #[test]
    fn undefined_success_is_none_and_reports_zero() {
        // Regression: an all-uncovered block (n = 0, N > 0) makes Eq. 2
        // undefined. The reported value must be exactly 0.0 — never NaN
        // (which would poison threshold means and serialize as null) —
        // while `success_opt` exposes the undefinedness to consumers
        // that must not treat it as a real measurement.
        let rs = rules();
        let block: Vec<PairRecord> = (0..10).map(|i| pair(300 + i, 77, 10)).collect();
        let m = ruleset_test(&rs, &block);
        assert_eq!(m.total, 10);
        assert_eq!(m.covered, 0);
        assert_eq!(m.success_opt(), None);
        assert_eq!(m.success(), 0.0);
        assert!(!m.success().is_nan());
        // Covered blocks report the same value through both accessors.
        let covered = vec![pair(400, 1, 10), pair(401, 1, 99)];
        let mc = ruleset_test(&rs, &covered);
        assert_eq!(mc.success_opt(), Some(0.5));
        assert_eq!(mc.success(), 0.5);
    }

    #[test]
    fn empty_rule_set_covers_nothing() {
        let block = vec![pair(1, 1, 10)];
        let m = ruleset_test(&RuleSet::empty(), &block);
        assert_eq!(
            m,
            BlockMeasures {
                total: 1,
                covered: 0,
                successes: 0
            }
        );
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.success(), 0.0);
    }

    #[test]
    fn empty_block_is_all_zero() {
        let m = ruleset_test(&rules(), &[]);
        assert_eq!(m, BlockMeasures::default());
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.success(), 0.0);
    }

    #[test]
    fn high_coverage_low_success_scenario() {
        // §III-B.2: "coverage is high, but success is low … rules would be
        // forwarded to the wrong neighbors."
        let rs = rules();
        let block: Vec<PairRecord> = (0..10).map(|i| pair(200 + i, 1, 55)).collect();
        let m = ruleset_test(&rs, &block);
        assert_eq!(m.coverage(), 1.0);
        assert_eq!(m.success(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = BlockMeasures {
            total: 10,
            covered: 8,
            successes: 6,
        };
        let b = BlockMeasures {
            total: 10,
            covered: 2,
            successes: 1,
        };
        a.merge(&b);
        assert_eq!(
            a,
            BlockMeasures {
                total: 20,
                covered: 10,
                successes: 7
            }
        );
    }
}
