//! Transaction databases for itemset mining.
//!
//! A transaction is a set of items (the market-basket analogy from the
//! paper: one purchase). Items are interned to dense `u32` ids; every
//! transaction is stored sorted and deduplicated so subset tests are
//! merge-scans.

use std::collections::HashMap;

/// A dense item identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

/// An in-memory transaction database.
#[derive(Debug, Clone, Default)]
pub struct TransactionDb {
    names: Vec<String>,
    by_name: HashMap<String, ItemId>,
    transactions: Vec<Vec<ItemId>>,
}

impl TransactionDb {
    /// An empty database.
    pub fn new() -> Self {
        TransactionDb::default()
    }

    /// Interns an item name, returning its stable id.
    pub fn intern(&mut self, name: &str) -> ItemId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = ItemId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// The name of an item.
    pub fn name(&self, id: ItemId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Looks up an item by name without interning.
    pub fn lookup(&self, name: &str) -> Option<ItemId> {
        self.by_name.get(name).copied()
    }

    /// Number of distinct items.
    pub fn item_count(&self) -> usize {
        self.names.len()
    }

    /// Adds a transaction by item names (interning as needed). Duplicate
    /// items within one transaction are collapsed.
    pub fn add_named(&mut self, items: &[&str]) {
        let ids: Vec<ItemId> = items.iter().map(|n| self.intern(n)).collect();
        self.add(ids);
    }

    /// Adds a transaction by item ids.
    pub fn add(&mut self, mut items: Vec<ItemId>) {
        items.sort_unstable();
        items.dedup();
        self.transactions.push(items);
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether no transactions have been added.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The stored transactions (each sorted, deduped).
    pub fn transactions(&self) -> &[Vec<ItemId>] {
        &self.transactions
    }

    /// Counts transactions containing all of `itemset` (which must be
    /// sorted). This is the *absolute* support count.
    pub fn support_count(&self, itemset: &[ItemId]) -> u64 {
        debug_assert!(
            itemset.windows(2).all(|w| w[0] < w[1]),
            "itemset not sorted"
        );
        self.transactions
            .iter()
            .filter(|t| is_subset(itemset, t))
            .count() as u64
    }

    /// Relative support in `[0, 1]`.
    pub fn support(&self, itemset: &[ItemId]) -> f64 {
        if self.transactions.is_empty() {
            return 0.0;
        }
        self.support_count(itemset) as f64 / self.transactions.len() as f64
    }
}

/// Merge-scan subset test over two sorted slices.
pub(crate) fn is_subset(needle: &[ItemId], haystack: &[ItemId]) -> bool {
    let mut hi = 0;
    'outer: for &x in needle {
        while hi < haystack.len() {
            match haystack[hi].cmp(&x) {
                std::cmp::Ordering::Less => hi += 1,
                std::cmp::Ordering::Equal => {
                    hi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> TransactionDb {
        let mut db = TransactionDb::new();
        db.add_named(&["bread", "milk"]);
        db.add_named(&["bread", "diapers", "beer", "eggs"]);
        db.add_named(&["milk", "diapers", "beer", "cola"]);
        db.add_named(&["bread", "milk", "diapers", "beer"]);
        db.add_named(&["bread", "milk", "diapers", "cola"]);
        db
    }

    #[test]
    fn interning_is_stable() {
        let mut db = TransactionDb::new();
        let a = db.intern("beer");
        let b = db.intern("diapers");
        assert_eq!(db.intern("beer"), a);
        assert_ne!(a, b);
        assert_eq!(db.name(a), "beer");
        assert_eq!(db.lookup("diapers"), Some(b));
        assert_eq!(db.lookup("caviar"), None);
        assert_eq!(db.item_count(), 2);
    }

    #[test]
    fn transactions_sorted_and_deduped() {
        let mut db = TransactionDb::new();
        db.add(vec![ItemId(3), ItemId(1), ItemId(3), ItemId(2)]);
        assert_eq!(db.transactions()[0], vec![ItemId(1), ItemId(2), ItemId(3)]);
    }

    #[test]
    fn support_counts_match_hand_computation() {
        let db = market();
        let beer = db.lookup("beer").unwrap();
        let diapers = db.lookup("diapers").unwrap();
        let mut pair = vec![diapers, beer];
        pair.sort_unstable();
        // {diapers, beer} appears in transactions 2, 3, 4 -> 3 of 5.
        assert_eq!(db.support_count(&pair), 3);
        assert!((db.support(&pair) - 0.6).abs() < 1e-12);
        // Single item.
        assert_eq!(db.support_count(&[beer]), 3);
        // Empty itemset is contained in everything.
        assert_eq!(db.support_count(&[]), 5);
    }

    #[test]
    fn subset_merge_scan() {
        let h: Vec<ItemId> = [1u32, 3, 5, 9].iter().map(|&i| ItemId(i)).collect();
        assert!(is_subset(&[ItemId(3), ItemId(9)], &h));
        assert!(is_subset(&[], &h));
        assert!(!is_subset(&[ItemId(2)], &h));
        assert!(!is_subset(&[ItemId(9), ItemId(10)], &h[..3]));
    }

    #[test]
    fn empty_db_supports_nothing() {
        let db = TransactionDb::new();
        assert!(db.is_empty());
        assert_eq!(db.support(&[ItemId(0)]), 0.0);
    }
}
