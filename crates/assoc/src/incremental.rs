//! Decayed pair counting for streaming rule maintenance.
//!
//! §VI of the paper sketches "an additional algorithm … that would create
//! rule sets for query routing and update these rules immediately as
//! query and reply messages are received", reporting coverage and success
//! "consistently … above 90%". This module provides the counting
//! substrate for that algorithm: per-`(src, via)` counts that decay
//! exponentially with a configurable half-life measured in observations,
//! so stale associations fade out without ever rebuilding a rule set.
//!
//! Decay is applied lazily: each entry stores `(value, last_update)` and
//! is brought forward only when touched, so `observe` is O(1); queries
//! (`covered`, `matches`, `top_k`) scan only the handful of consequents
//! recorded for one source. An amortized sweep drops entries that have
//! decayed to dust, bounding memory by the active association set.

use crate::pairs::RuleSet;
use arq_trace::record::{HostId, PairRecord};
use std::collections::HashMap;

/// Tolerance for threshold comparisons: decayed counts of logically
/// integer observations accumulate ~1e-9 of floating-point shortfall per
/// hundred updates, which must not flip an exact-threshold comparison.
const THRESHOLD_EPS: f64 = 1e-6;

#[derive(Debug, Clone, Copy)]
struct Entry {
    value: f64,
    at: u64,
}

/// A complete, canonically ordered capture of a [`DecayedPairCounts`]
/// — everything [`DecayedPairCounts::restore`] needs to rebuild a
/// counter whose future behavior is bit-for-bit identical to the
/// original's. Entries are sorted by `(src, via)`, so two snapshots of
/// equal counters compare (and serialize) identically; `value` is the
/// stored (not brought-forward) count and `at` its last-update clock,
/// preserving exact decay arithmetic across the round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct DecayedSnapshot {
    /// The counter's half-life, in observations.
    pub half_life: f64,
    /// Total observations fed so far (the decay clock).
    pub clock: u64,
    /// Observations since the last amortized sweep — restoring this
    /// keeps the sweep schedule, and hence every future eviction,
    /// aligned with an uninterrupted counter.
    pub since_sweep: u64,
    /// `(src, via, stored value, last-update clock)` rows, sorted.
    pub entries: Vec<(HostId, HostId, f64, u64)>,
}

/// Exponentially decayed `(src, via)` counts with rule-set-style lookups.
#[derive(Debug, Clone)]
pub struct DecayedPairCounts {
    half_life: f64,
    clock: u64,
    counts: HashMap<HostId, HashMap<HostId, Entry>>,
    entries: usize,
    observations_since_sweep: u64,
}

impl DecayedPairCounts {
    /// Creates a counter whose entries halve every `half_life`
    /// observations.
    pub fn new(half_life: f64) -> Self {
        assert!(half_life > 0.0, "half-life must be positive");
        DecayedPairCounts {
            half_life,
            clock: 0,
            counts: HashMap::new(),
            entries: 0,
            observations_since_sweep: 0,
        }
    }

    /// The configured half-life.
    pub fn half_life(&self) -> f64 {
        self.half_life
    }

    /// Total observations fed so far.
    pub fn observations(&self) -> u64 {
        self.clock
    }

    fn decayed(&self, entry: Entry) -> f64 {
        let age = (self.clock - entry.at) as f64;
        entry.value * 0.5f64.powf(age / self.half_life)
    }

    /// Records one observed query–reply pair association.
    pub fn observe(&mut self, src: HostId, via: HostId) {
        self.clock += 1;
        let clock = self.clock;
        let half_life = self.half_life;
        let inner = self.counts.entry(src).or_default();
        let len_before = inner.len();
        let entry = inner.entry(via).or_insert(Entry {
            value: 0.0,
            at: clock,
        });
        let age = (clock - entry.at) as f64;
        entry.value = entry.value * 0.5f64.powf(age / half_life) + 1.0;
        entry.at = clock;
        self.entries += inner.len() - len_before;
        self.observations_since_sweep += 1;
        if self.observations_since_sweep >= (self.half_life as u64).max(1) * 8 {
            self.sweep(0.01);
            self.observations_since_sweep = 0;
        }
    }

    /// Records the association of a trace pair.
    pub fn observe_pair(&mut self, p: &PairRecord) {
        self.observe(p.src, p.via);
    }

    /// Demotes one association: brings its decayed count forward and
    /// multiplies it by `factor` (in `[0, 1]`). `factor == 0.0` evicts the
    /// rule outright. Negative feedback — a consequent observed dead or a
    /// query that timed out along the rule's route — flows through here,
    /// so a stale rule drops below the support threshold after a few
    /// failures instead of waiting out its half-life.
    pub fn penalize(&mut self, src: HostId, via: HostId, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "penalty factor outside [0, 1]"
        );
        let Some(inner) = self.counts.get_mut(&src) else {
            return;
        };
        let clock = self.clock;
        let half_life = self.half_life;
        if factor == 0.0 {
            if inner.remove(&via).is_some() {
                self.entries -= 1;
            }
            if inner.is_empty() {
                self.counts.remove(&src);
            }
            return;
        }
        if let Some(entry) = inner.get_mut(&via) {
            let age = (clock - entry.at) as f64;
            entry.value = entry.value * 0.5f64.powf(age / half_life) * factor;
            entry.at = clock;
        }
    }

    /// Current decayed count for one association.
    pub fn count(&self, src: HostId, via: HostId) -> f64 {
        self.counts
            .get(&src)
            .and_then(|inner| inner.get(&via))
            .map(|&e| self.decayed(e))
            .unwrap_or(0.0)
    }

    /// Whether `src` has any consequent with decayed count ≥ `threshold` —
    /// i.e. whether a materialized rule set would cover it.
    pub fn covered(&self, src: HostId, threshold: f64) -> bool {
        self.counts.get(&src).is_some_and(|inner| {
            inner
                .values()
                .any(|&e| self.decayed(e) >= threshold - THRESHOLD_EPS)
        })
    }

    /// Whether the rule `{src} → {via}` would be present at `threshold`.
    pub fn matches(&self, src: HostId, via: HostId, threshold: f64) -> bool {
        self.count(src, via) >= threshold - THRESHOLD_EPS
    }

    /// The top-`k` consequents of `src` with decayed count ≥ `threshold`,
    /// ranked by descending count (ties by host id).
    pub fn top_k(&self, src: HostId, k: usize, threshold: f64) -> Vec<HostId> {
        let Some(inner) = self.counts.get(&src) else {
            return Vec::new();
        };
        let mut ranked: Vec<(HostId, f64)> = inner
            .iter()
            .map(|(&via, &e)| (via, self.decayed(e)))
            .filter(|&(_, v)| v >= threshold - THRESHOLD_EPS)
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.into_iter().take(k).map(|(h, _)| h).collect()
    }

    /// [`Self::top_k`] with an additional minimum-confidence gate: the
    /// confidence of `{src} → {via}` is its decayed count divided by the
    /// decayed total over *all* of `src`'s consequents, and consequents
    /// below `min_confidence` are pruned before ranking. Confidence is
    /// computed on the fly from the stored entries — calling this never
    /// changes counter state, so snapshot/restore and sweep schedules
    /// are unaffected. `min_confidence = 0.0` reduces exactly to
    /// [`Self::top_k`].
    pub fn top_k_confident(
        &self,
        src: HostId,
        k: usize,
        threshold: f64,
        min_confidence: f64,
    ) -> Vec<HostId> {
        let Some(inner) = self.counts.get(&src) else {
            return Vec::new();
        };
        let total: f64 = inner.values().map(|&e| self.decayed(e)).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        let mut ranked: Vec<(HostId, f64)> = inner
            .iter()
            .map(|(&via, &e)| (via, self.decayed(e)))
            .filter(|&(_, v)| {
                v >= threshold - THRESHOLD_EPS && v / total >= min_confidence - THRESHOLD_EPS
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.into_iter().take(k).map(|(h, _)| h).collect()
    }

    /// Removes entries whose decayed value is below `floor`.
    pub fn sweep(&mut self, floor: f64) {
        let clock = self.clock;
        let half_life = self.half_life;
        for inner in self.counts.values_mut() {
            inner.retain(|_, e| {
                let age = (clock - e.at) as f64;
                e.value * 0.5f64.powf(age / half_life) >= floor
            });
        }
        self.counts.retain(|_, inner| !inner.is_empty());
        self.entries = self.counts.values().map(HashMap::len).sum();
    }

    /// Number of live (un-swept) associations.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether no associations are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Captures the complete counter state for checkpointing. The
    /// inverse of [`Self::restore`]; the pair is exact, not lossy —
    /// see [`DecayedSnapshot`].
    pub fn snapshot(&self) -> DecayedSnapshot {
        let mut entries: Vec<(HostId, HostId, f64, u64)> = self
            .counts
            .iter()
            .flat_map(|(&src, inner)| {
                inner
                    .iter()
                    .map(move |(&via, &Entry { value, at })| (src, via, value, at))
            })
            .collect();
        entries.sort_by_key(|e| (e.0, e.1));
        DecayedSnapshot {
            half_life: self.half_life,
            clock: self.clock,
            since_sweep: self.observations_since_sweep,
            entries,
        }
    }

    /// Rebuilds a counter from a [`DecayedSnapshot`]. Feeding the
    /// restored counter the same observation suffix as the snapshotted
    /// original produces identical counts, sweeps, and rule sets.
    pub fn restore(snap: &DecayedSnapshot) -> Self {
        let mut c = DecayedPairCounts::new(snap.half_life);
        c.clock = snap.clock;
        c.observations_since_sweep = snap.since_sweep;
        for &(src, via, value, at) in &snap.entries {
            c.counts
                .entry(src)
                .or_default()
                .insert(via, Entry { value, at });
        }
        c.entries = snap.entries.len();
        c
    }

    /// Materializes a [`RuleSet`] containing every association whose
    /// decayed count is at least `threshold`. Counts are rounded down, so
    /// pruning semantics match block mining with an integer threshold.
    pub fn ruleset(&self, threshold: f64) -> RuleSet {
        assert!(threshold >= 1.0, "threshold below one count is meaningless");
        let rows = self.counts.iter().flat_map(|(&src, inner)| {
            inner
                .iter()
                .map(move |(&via, &e)| (src, via, (self.decayed(e) + THRESHOLD_EPS).floor() as u64))
        });
        RuleSet::from_rows(rows, threshold.floor().max(1.0) as u64, self.clock as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_without_decay_pressure() {
        let mut c = DecayedPairCounts::new(1e9);
        for _ in 0..100 {
            c.observe(HostId(1), HostId(2));
        }
        assert!((c.count(HostId(1), HostId(2)) - 100.0).abs() < 1e-3);
        assert_eq!(c.observations(), 100);
    }

    #[test]
    fn half_life_halves() {
        let mut c = DecayedPairCounts::new(10.0);
        c.observe(HostId(1), HostId(2)); // count 1 at clock 1
                                         // Advance the clock by 10 observations on an unrelated key.
        for _ in 0..10 {
            c.observe(HostId(8), HostId(9));
        }
        let v = c.count(HostId(1), HostId(2));
        assert!((v - 0.5).abs() < 1e-9, "count {v}");
    }

    #[test]
    fn stale_associations_fade_fresh_ones_dominate() {
        let mut c = DecayedPairCounts::new(50.0);
        for _ in 0..100 {
            c.observe(HostId(1), HostId(10)); // old route
        }
        for _ in 0..100 {
            c.observe(HostId(1), HostId(20)); // new route
        }
        assert!(c.count(HostId(1), HostId(20)) > c.count(HostId(1), HostId(10)));
        let top = c.top_k(HostId(1), 1, 1.0);
        assert_eq!(top, vec![HostId(20)]);
    }

    #[test]
    fn covered_and_matches_respect_threshold() {
        let mut c = DecayedPairCounts::new(1e9);
        for _ in 0..5 {
            c.observe(HostId(1), HostId(10));
        }
        assert!(c.covered(HostId(1), 5.0), "exact threshold must hold");
        assert!(!c.covered(HostId(1), 6.0));
        assert!(c.matches(HostId(1), HostId(10), 4.5));
        assert!(!c.matches(HostId(1), HostId(11), 0.5));
        assert!(!c.covered(HostId(2), 1.0));
    }

    #[test]
    fn top_k_ranks_and_truncates() {
        let mut c = DecayedPairCounts::new(1e9);
        for _ in 0..9 {
            c.observe(HostId(1), HostId(30));
        }
        for _ in 0..5 {
            c.observe(HostId(1), HostId(20));
        }
        for _ in 0..2 {
            c.observe(HostId(1), HostId(10));
        }
        assert_eq!(c.top_k(HostId(1), 2, 1.0), vec![HostId(30), HostId(20)]);
        assert_eq!(c.top_k(HostId(1), 10, 3.0), vec![HostId(30), HostId(20)]);
        assert!(c.top_k(HostId(9), 3, 1.0).is_empty());
    }

    #[test]
    fn top_k_confident_prunes_low_confidence_consequents() {
        let mut c = DecayedPairCounts::new(1e9);
        for _ in 0..70 {
            c.observe(HostId(1), HostId(10)); // confidence 0.7
        }
        for _ in 0..20 {
            c.observe(HostId(1), HostId(20)); // confidence 0.2
        }
        for _ in 0..10 {
            c.observe(HostId(1), HostId(30)); // confidence 0.1
        }
        // No gate: identical to plain top_k.
        assert_eq!(
            c.top_k_confident(HostId(1), 10, 1.0, 0.0),
            c.top_k(HostId(1), 10, 1.0)
        );
        // A 0.15 gate drops only the 0.1 consequent; an exact-threshold
        // confidence (0.2) must survive the epsilon.
        assert_eq!(
            c.top_k_confident(HostId(1), 10, 1.0, 0.2),
            vec![HostId(10), HostId(20)]
        );
        assert_eq!(c.top_k_confident(HostId(1), 10, 1.0, 0.5), vec![HostId(10)]);
        // Unknown source: empty, no panic.
        assert!(c.top_k_confident(HostId(9), 3, 1.0, 0.5).is_empty());
    }

    /// Seeded property sweep (always on, unlike the `proptest`-gated
    /// twin in `tests/prop.rs`): top-(k+1) extends top-k, and no
    /// admitted consequent sits below the support or confidence gates.
    #[test]
    fn top_k_monotone_and_gated_over_random_streams() {
        let mut rng = arq_simkern::Rng64::seed_from(0xA55A_2026);
        for case in 0..50u64 {
            let mut c = DecayedPairCounts::new(if case % 2 == 0 { 1e12 } else { 40.0 });
            for _ in 0..(50 + rng.below(400)) {
                c.observe(
                    HostId(rng.below(5) as u32),
                    HostId(100 + rng.below(6) as u32),
                );
            }
            let support = 1.0 + rng.below(4) as f64;
            let minconf = rng.f64();
            for s in 0..5u32 {
                let src = HostId(s);
                let total: f64 = (0..6u32).map(|v| c.count(src, HostId(100 + v))).sum();
                for k in 1..5usize {
                    let small = c.top_k_confident(src, k, support, minconf);
                    let large = c.top_k_confident(src, k + 1, support, minconf);
                    assert!(large.len() >= small.len());
                    assert_eq!(&large[..small.len()], &small[..], "top-k not a prefix");
                    for &via in &large {
                        let v = c.count(src, via);
                        assert!(v >= support - 2.0 * THRESHOLD_EPS, "sub-support admitted");
                        assert!(
                            v / total >= minconf - 2.0 * THRESHOLD_EPS,
                            "sub-confidence admitted"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn penalize_demotes_and_evicts() {
        let mut c = DecayedPairCounts::new(1e9);
        for _ in 0..8 {
            c.observe(HostId(1), HostId(10));
        }
        c.penalize(HostId(1), HostId(10), 0.5);
        assert!((c.count(HostId(1), HostId(10)) - 4.0).abs() < 1e-6);
        // Unknown associations are a no-op.
        c.penalize(HostId(1), HostId(99), 0.5);
        c.penalize(HostId(9), HostId(10), 0.5);
        // A zero factor evicts the rule and its emptied antecedent.
        c.penalize(HostId(1), HostId(10), 0.0);
        assert_eq!(c.count(HostId(1), HostId(10)), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "penalty factor")]
    fn penalize_rejects_growth_factors() {
        let mut c = DecayedPairCounts::new(10.0);
        c.penalize(HostId(1), HostId(2), 1.5);
    }

    #[test]
    fn sweep_drops_dust() {
        let mut c = DecayedPairCounts::new(5.0);
        c.observe(HostId(1), HostId(2));
        for _ in 0..200 {
            c.observe(HostId(3), HostId(4));
        }
        c.sweep(0.01);
        assert_eq!(c.count(HostId(1), HostId(2)), 0.0);
        assert!(c.count(HostId(3), HostId(4)) > 1.0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn automatic_sweep_bounds_memory() {
        let mut c = DecayedPairCounts::new(10.0);
        for i in 0..10_000u32 {
            c.observe(HostId(i), HostId(0));
        }
        assert!(c.len() < 2_000, "map grew to {}", c.len());
    }

    #[test]
    fn ruleset_materialization_thresholds() {
        let mut c = DecayedPairCounts::new(1e9);
        for _ in 0..15 {
            c.observe(HostId(1), HostId(10));
        }
        for _ in 0..3 {
            c.observe(HostId(1), HostId(11));
        }
        let rs = c.ruleset(10.0);
        assert!(rs.matches(HostId(1), HostId(10)));
        assert!(!rs.matches(HostId(1), HostId(11)));
        let loose = c.ruleset(2.0);
        assert!(loose.matches(HostId(1), HostId(11)));
    }

    #[test]
    fn empty_counter() {
        let c = DecayedPairCounts::new(10.0);
        assert!(c.is_empty());
        assert_eq!(c.count(HostId(0), HostId(0)), 0.0);
        assert!(c.ruleset(1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "half-life")]
    fn rejects_nonpositive_half_life() {
        DecayedPairCounts::new(0.0);
    }

    #[test]
    fn snapshot_restore_round_trips_exactly() {
        let mut c = DecayedPairCounts::new(7.0);
        for i in 0..500u32 {
            c.observe(HostId(i % 9), HostId(100 + i % 4));
        }
        c.penalize(HostId(1), HostId(101), 0.5);
        let snap = c.snapshot();
        let mut restored = DecayedPairCounts::restore(&snap);
        assert_eq!(restored.snapshot(), snap, "snapshot not idempotent");
        assert_eq!(restored.len(), c.len());
        assert_eq!(restored.observations(), c.observations());
        // The restored counter's future is the original's future: same
        // observations produce the same counts and the same rule sets,
        // including sweep timing.
        for i in 0..300u32 {
            c.observe(HostId(i % 5), HostId(200));
            restored.observe(HostId(i % 5), HostId(200));
        }
        assert_eq!(c.len(), restored.len(), "sweep schedules diverged");
        assert_eq!(
            c.ruleset(2.0).digest(),
            restored.ruleset(2.0).digest(),
            "rule sets diverged after restore"
        );
    }

    #[test]
    fn snapshot_is_canonically_sorted() {
        let mut c = DecayedPairCounts::new(1e9);
        for (s, v) in [(5u32, 9u32), (1, 3), (5, 2), (0, 7), (1, 1)] {
            c.observe(HostId(s), HostId(v));
        }
        let rows: Vec<(HostId, HostId)> = c
            .snapshot()
            .entries
            .iter()
            .map(|&(s, v, _, _)| (s, v))
            .collect();
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(rows, sorted);
    }
}
