//! # arq-assoc — association analysis for query routing
//!
//! The data-mining substrate of the workspace. Two layers:
//!
//! **General association analysis** (§III-A of the paper): transaction
//! databases over interned items, frequent-itemset mining with
//! [`apriori`], [`fpgrowth`], and [`eclat`] (property tests assert all
//! three agree), and
//! [`rules`] — rule generation with the classical support / confidence /
//! lift / conviction measures and threshold pruning. The paper's routing
//! rules only ever need singleton antecedents and consequents, but the
//! future-work items (query-string dimensions, clustering, multi-item
//! rules) need the general machinery, so it is built and tested.
//!
//! **Host-pair specialization** (§III-B): [`pairs::mine_pairs`] counts
//! `(src, via)` host pairs in a block of query–reply pairs and
//! support-prunes them into a [`pairs::RuleSet`] — "{host1} → {host2}"
//! rules ranked by support. [`measures::ruleset_test`] evaluates a rule
//! set against a test block, producing the paper's two rule-*set*
//! measures: coverage α (Eq. 1) and success ρ (Eq. 2).
//!
//! [`keyed`] generalizes antecedents beyond a single host — e.g.
//! `(source host, query topic)` — implementing the §VI "query-string
//! dimension" extension. [`incremental::DecayedPairCounts`] supports the
//! paper's future-work streaming maintainer: per-pair counts with exponential decay, updated
//! on every observed reply instead of block-at-a-time.

#![warn(missing_docs)]

pub mod apriori;
pub mod eclat;
pub mod fpgrowth;
pub mod incremental;
pub mod keyed;
pub mod lossy;
pub mod measures;
pub mod pairs;
pub mod rules;
pub mod transaction;

pub use incremental::{DecayedPairCounts, DecayedSnapshot};
pub use keyed::{keyed_ruleset_test, mine_keyed, mine_keyed_sharded, KeyedRuleSet};
pub use lossy::{LossyPairCounts, LossySnapshot};
pub use measures::{ruleset_test, BlockMeasures};
pub use pairs::{mine_pairs, mine_pairs_sharded, PairMiner, RuleSet};
pub use transaction::{ItemId, TransactionDb};
