//! Host-pair rule sets — the paper's §III-B specialization.
//!
//! Routing rules have the form `{host1} → {host2}`: `host1` is a neighbor
//! that forwarded queries to us, `host2` a neighbor through which replies
//! to those queries came back. Because antecedent and consequent are
//! singletons, mining reduces to counting `(src, via)` combinations in a
//! block and pruning the ones seen fewer than `min_support` times
//! ("support pruning"), exactly as the paper's simulator stored them:
//!
//! > "The database table representing the rule sets contains three values
//! > for each entry: the host from which one or more queries were
//! > received, a node that returned a reply message in response to one of
//! > those queries, and the number of times that that node sent reply
//! > messages in response to queries sent from the node that forwarded
//! > the query."

use arq_trace::columns::{pack_pair, unpack_pair, PairColumns};
use arq_trace::record::{HostId, PairRecord};
use std::collections::HashMap;

/// A mined rule set: antecedent host → consequent hosts ranked by
/// descending support (ties broken by host id for determinism).
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: HashMap<HostId, Vec<(HostId, u64)>>,
    min_support: u64,
    source_pairs: usize,
}

impl RuleSet {
    /// An empty rule set (matches nothing).
    pub fn empty() -> Self {
        RuleSet::default()
    }

    /// Builds a rule set from explicit `(src, via, count)` rows, applying
    /// the same support pruning and ranking as [`mine_pairs`]. Used by
    /// alternative counting backends (e.g. the streaming maintainer).
    pub fn from_rows(
        rows: impl IntoIterator<Item = (HostId, HostId, u64)>,
        min_support: u64,
        source_pairs: usize,
    ) -> Self {
        let counts: HashMap<(HostId, HostId), u64> =
            rows.into_iter().map(|(s, v, c)| ((s, v), c)).collect();
        Self::from_counts(counts, min_support, source_pairs)
    }

    fn from_counts(
        counts: HashMap<(HostId, HostId), u64>,
        min_support: u64,
        source_pairs: usize,
    ) -> Self {
        Self::from_count_rows(
            counts.into_iter().map(|((s, v), c)| (s, v, c)),
            min_support,
            source_pairs,
        )
    }

    /// The shared build step behind every counting backend: support
    /// pruning, grouping by antecedent, and the deterministic
    /// (descending support, ascending host id) consequent ranking. The
    /// ranking is a total order, so the resulting rule set is identical
    /// no matter which order the rows arrive in — this is what makes
    /// shard-merge order irrelevant.
    fn from_count_rows(
        rows: impl Iterator<Item = (HostId, HostId, u64)>,
        min_support: u64,
        source_pairs: usize,
    ) -> Self {
        let mut rules: HashMap<HostId, Vec<(HostId, u64)>> = HashMap::new();
        for (src, via, count) in rows {
            if count >= min_support {
                rules.entry(src).or_default().push((via, count));
            }
        }
        for conseq in rules.values_mut() {
            conseq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        RuleSet {
            rules,
            min_support,
            source_pairs,
        }
    }

    /// [`Self::from_count_rows`] specialized to packed keys: `rows` is a
    /// pre-pruned scratch buffer that gets sorted in place. Sorting by
    /// the packed key groups each antecedent contiguously (it owns the
    /// high 32 bits), so the map gets one insert per antecedent instead
    /// of one lookup per rule — and the buffer's allocation survives in
    /// the caller for the next block.
    fn from_packed_rows(rows: &mut [(u64, u64)], min_support: u64, source_pairs: usize) -> Self {
        rows.sort_unstable_by_key(|&(key, _)| key);
        let mut rules: HashMap<HostId, Vec<(HostId, u64)>> = HashMap::new();
        let mut i = 0;
        while i < rows.len() {
            let src = rows[i].0 >> 32;
            let mut j = i + 1;
            while j < rows.len() && rows[j].0 >> 32 == src {
                j += 1;
            }
            let mut conseq: Vec<(HostId, u64)> = rows[i..j]
                .iter()
                .map(|&(key, c)| (unpack_pair(key).1, c))
                .collect();
            conseq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            rules.insert(HostId(src as u32), conseq);
            i = j;
        }
        RuleSet {
            rules,
            min_support,
            source_pairs,
        }
    }

    /// Whether any rule has `src` as antecedent.
    #[inline]
    pub fn has_antecedent(&self, src: HostId) -> bool {
        self.rules.contains_key(&src)
    }

    /// The ranked consequents for `src` (empty slice when uncovered).
    pub fn consequents(&self, src: HostId) -> &[(HostId, u64)] {
        self.rules.get(&src).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The top-`k` consequent hosts for `src` by support.
    pub fn top_k(&self, src: HostId, k: usize) -> impl Iterator<Item = HostId> + '_ {
        self.consequents(src).iter().take(k).map(|&(h, _)| h)
    }

    /// Whether the rule `{src} → {via}` is present.
    pub fn matches(&self, src: HostId, via: HostId) -> bool {
        self.consequents(src).iter().any(|&(h, _)| h == via)
    }

    /// Total number of rules (antecedent–consequent pairs).
    pub fn rule_count(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }

    /// Number of distinct antecedents.
    pub fn antecedent_count(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The support threshold the set was pruned with.
    pub fn min_support(&self) -> u64 {
        self.min_support
    }

    /// How many query–reply pairs the set was mined from.
    pub fn source_pairs(&self) -> usize {
        self.source_pairs
    }

    /// Iterates over `(antecedent, consequent, support)` rows.
    pub fn iter(&self) -> impl Iterator<Item = (HostId, HostId, u64)> + '_ {
        self.rules
            .iter()
            .flat_map(|(&src, conseq)| conseq.iter().map(move |&(via, c)| (src, via, c)))
    }

    /// FNV-1a digest over the canonically sorted rule rows plus the
    /// pruning threshold. Two rule sets holding the same rules at the
    /// same threshold digest identically regardless of construction
    /// order or backend — this is the equality the serve checkpoint
    /// contract is stated over. (`source_pairs` is provenance, not a
    /// rule, and deliberately stays out of the digest.)
    pub fn digest(&self) -> u64 {
        let mut rows: Vec<(u32, u32, u64)> = self
            .iter()
            .map(|(src, via, count)| (src.0, via.0, count))
            .collect();
        rows.sort_unstable();
        let mut bytes = Vec::with_capacity(8 + rows.len() * 16);
        bytes.extend_from_slice(&self.min_support.to_le_bytes());
        for (src, via, count) in rows {
            bytes.extend_from_slice(&src.to_le_bytes());
            bytes.extend_from_slice(&via.to_le_bytes());
            bytes.extend_from_slice(&count.to_le_bytes());
        }
        arq_simkern::rng::fnv1a(&bytes)
    }
}

/// Mines a rule set from a block: counts `(src, via)` combinations and
/// prunes those seen fewer than `min_support` times.
pub fn mine_pairs(block: &[PairRecord], min_support: u64) -> RuleSet {
    assert!(min_support >= 1, "support threshold must be at least 1");
    let mut counts: HashMap<(HostId, HostId), u64> = HashMap::new();
    for p in block {
        *counts.entry((p.src, p.via)).or_insert(0) += 1;
    }
    RuleSet::from_counts(counts, min_support, block.len())
}

/// Mines with an additional confidence cut (§VI extension, experiment
/// E9): a rule `{src} → {via}` survives only if
/// `count(src, via) / count(src, ·) >= min_confidence`.
pub fn mine_pairs_with_confidence(
    block: &[PairRecord],
    min_support: u64,
    min_confidence: f64,
) -> RuleSet {
    assert!(min_support >= 1, "support threshold must be at least 1");
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence threshold out of range"
    );
    let mut counts: HashMap<(HostId, HostId), u64> = HashMap::new();
    let mut src_totals: HashMap<HostId, u64> = HashMap::new();
    for p in block {
        *counts.entry((p.src, p.via)).or_insert(0) += 1;
        *src_totals.entry(p.src).or_insert(0) += 1;
    }
    counts.retain(|(src, _), count| *count as f64 / src_totals[src] as f64 >= min_confidence);
    RuleSet::from_counts(counts, min_support, block.len())
}

/// Fibonacci multiplicative mix of the packed pair key: one xor-fold so
/// both host ids reach the low word, one golden-ratio multiply. The
/// mixing lands in the high bits, so [`PackedCounts`] indexes from bit
/// 32 down. A single multiply beats SipHash-on-a-tuple by an order of
/// magnitude on this workload, and the table only needs uniformity, not
/// keyed DoS resistance.
#[inline]
fn mix(key: u64) -> u64 {
    (key ^ (key >> 33)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Open-addressed `(packed pair key → count)` table: the scratch arena
/// behind the fast miners. Linear probing over power-of-two storage,
/// with key and count interleaved in one slot so each probe touches a
/// single cache line; a slot is empty iff its count is zero (counts are
/// always ≥ 1 once a key is inserted, so the zero key needs no
/// sentinel). `clear` resets the slots in place — re-mining a new block
/// reuses the allocation.
#[derive(Debug, Clone)]
struct PackedCounts {
    /// `(key, count)` slots; `count == 0` marks an empty slot.
    slots: Vec<(u64, u64)>,
    len: usize,
}

impl PackedCounts {
    const MIN_CAPACITY: usize = 64;

    fn new() -> Self {
        PackedCounts {
            slots: vec![(0, 0); Self::MIN_CAPACITY],
            len: 0,
        }
    }

    fn clear(&mut self) {
        self.slots.fill((0, 0));
        self.len = 0;
    }

    /// Adds `amount` to `key`'s count, growing at 50% load so probe
    /// chains stay short.
    #[inline]
    fn add(&mut self, key: u64, amount: u64) {
        if self.len * 2 >= self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        // Index from bit 32 down: that is where the multiplicative mix
        // concentrates its avalanche (tables stay far below 2^32 slots).
        let mut i = ((mix(key) >> 32) as usize) & mask;
        loop {
            let slot = &mut self.slots[i];
            if slot.1 == 0 {
                *slot = (key, amount);
                self.len += 1;
                return;
            }
            if slot.0 == key {
                slot.1 += amount;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(Self::MIN_CAPACITY);
        let old = std::mem::replace(&mut self.slots, vec![(0, 0); new_cap]);
        self.len = 0;
        for (key, count) in old {
            if count > 0 {
                self.add(key, count);
            }
        }
    }

    /// Occupied `(key, count)` slots, in table order.
    fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.slots.iter().filter(|&&(_, c)| c > 0).copied()
    }
}

/// A reusable sharded pair miner.
///
/// Produces exactly the rule set [`mine_pairs`] would — same support
/// pruning, same consequent ranking — but counts over a columnar view
/// with open-addressed scratch tables that persist across calls, split
/// over `shards` worker threads for large blocks. Determinism does not
/// depend on the shard count: the input is partitioned into contiguous
/// chunks, each shard produces exact per-key subtotals, and addition is
/// commutative, so the merged per-key totals (and therefore the ranked
/// rule set) are identical for any partitioning.
///
/// Keep one of these alive across re-mines to avoid reallocating the
/// count tables and columns every block — the allocation-lean path the
/// block strategies use.
#[derive(Debug, Clone)]
pub struct PairMiner {
    shards: usize,
    columns: PairColumns,
    tables: Vec<PackedCounts>,
    rows: Vec<(u64, u64)>,
}

impl Default for PairMiner {
    fn default() -> Self {
        Self::new()
    }
}

impl PairMiner {
    /// Each shard must see enough pairs to amortize its thread spawn.
    const MIN_PAIRS_PER_SHARD: usize = 8_192;

    /// A single-threaded miner (still columnar + open-addressed).
    pub fn new() -> Self {
        Self::sharded(1)
    }

    /// A miner that fans counting out over up to `shards` threads.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn sharded(shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        PairMiner {
            shards,
            columns: PairColumns::new(),
            tables: (0..shards).map(|_| PackedCounts::new()).collect(),
            rows: Vec::new(),
        }
    }

    /// The configured shard ceiling.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Mines `block` with support pruning at `min_support`; equivalent
    /// to [`mine_pairs`] on the same input.
    pub fn mine(&mut self, block: &[PairRecord], min_support: u64) -> RuleSet {
        assert!(min_support >= 1, "support threshold must be at least 1");
        // Small blocks are counted inline: shard fan-out only pays for
        // itself once each worker has thousands of pairs to chew.
        let shards = self
            .shards
            .min((block.len() / Self::MIN_PAIRS_PER_SHARD).max(1));
        let n = block.len();
        if shards <= 1 {
            // Single shard: pack keys straight off the records — the
            // column transpose would be a pure extra pass here.
            let table = &mut self.tables[0];
            table.clear();
            for p in block {
                table.add(pack_pair(p.src, p.via), 1);
            }
        } else {
            self.columns.fill(block);
            let columns = &self.columns;
            let chunk = n.div_ceil(shards);
            std::thread::scope(|scope| {
                for (s, table) in self.tables.iter_mut().take(shards).enumerate() {
                    let range = (s * chunk).min(n)..((s + 1) * chunk).min(n);
                    scope.spawn(move || {
                        table.clear();
                        for key in columns.packed_range(range) {
                            table.add(key, 1);
                        }
                    });
                }
            });
            // Merge shard subtotals into shard 0's table. Sum-merge is
            // commutative and exact, so the totals — and the ranked
            // rule set built from them — match the single-shard run.
            let (head, rest) = self.tables.split_at_mut(1);
            for table in rest.iter().take(shards - 1) {
                for (key, count) in table.iter() {
                    head[0].add(key, count);
                }
            }
        }
        self.rows.clear();
        self.rows
            .extend(self.tables[0].iter().filter(|&(_, c)| c >= min_support));
        RuleSet::from_packed_rows(&mut self.rows, min_support, block.len())
    }
}

/// One-shot sharded mining; equivalent to [`mine_pairs`] at any shard
/// count. Re-miners that run block after block should hold a
/// [`PairMiner`] instead to reuse its scratch tables.
pub fn mine_pairs_sharded(block: &[PairRecord], min_support: u64, shards: usize) -> RuleSet {
    PairMiner::sharded(shards).mine(block, min_support)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_simkern::SimTime;
    use arq_trace::record::{Guid, QueryId};

    fn pair(i: u64, src: u32, via: u32) -> PairRecord {
        PairRecord {
            time: SimTime::from_ticks(i),
            guid: Guid(u128::from(i)),
            src: HostId(src),
            via: HostId(via),
            responder: HostId(999),
            query: QueryId(0),
        }
    }

    /// Block: host 1 answered 5x via 10, 3x via 11, 1x via 12;
    /// host 2 answered 2x via 10.
    fn block() -> Vec<PairRecord> {
        let mut v = Vec::new();
        let mut i = 0;
        for _ in 0..5 {
            v.push(pair(i, 1, 10));
            i += 1;
        }
        for _ in 0..3 {
            v.push(pair(i, 1, 11));
            i += 1;
        }
        v.push(pair(i, 1, 12));
        i += 1;
        for _ in 0..2 {
            v.push(pair(i, 2, 10));
            i += 1;
        }
        v
    }

    #[test]
    fn support_pruning() {
        let rs = mine_pairs(&block(), 2);
        assert!(rs.matches(HostId(1), HostId(10)));
        assert!(rs.matches(HostId(1), HostId(11)));
        assert!(
            !rs.matches(HostId(1), HostId(12)),
            "support-1 rule survived"
        );
        assert!(rs.matches(HostId(2), HostId(10)));
        assert_eq!(rs.rule_count(), 3);
        assert_eq!(rs.antecedent_count(), 2);
        assert_eq!(rs.source_pairs(), 11);
        assert_eq!(rs.min_support(), 2);
    }

    #[test]
    fn higher_threshold_gives_subset() {
        let loose = mine_pairs(&block(), 1);
        let tight = mine_pairs(&block(), 4);
        assert!(tight.rule_count() < loose.rule_count());
        for (src, via, _) in tight.iter() {
            assert!(loose.matches(src, via));
        }
    }

    #[test]
    fn consequents_ranked_by_support() {
        let rs = mine_pairs(&block(), 1);
        let ranked: Vec<(HostId, u64)> = rs.consequents(HostId(1)).to_vec();
        assert_eq!(
            ranked,
            vec![(HostId(10), 5), (HostId(11), 3), (HostId(12), 1)]
        );
        let top2: Vec<HostId> = rs.top_k(HostId(1), 2).collect();
        assert_eq!(top2, vec![HostId(10), HostId(11)]);
    }

    #[test]
    fn rank_ties_break_by_host_id() {
        let mut v = Vec::new();
        for i in 0..3 {
            v.push(pair(i, 1, 30));
        }
        for i in 3..6 {
            v.push(pair(i, 1, 20));
        }
        let rs = mine_pairs(&v, 1);
        let ranked: Vec<HostId> = rs.top_k(HostId(1), 5).collect();
        assert_eq!(ranked, vec![HostId(20), HostId(30)]);
    }

    #[test]
    fn uncovered_antecedent() {
        let rs = mine_pairs(&block(), 1);
        assert!(!rs.has_antecedent(HostId(99)));
        assert!(rs.consequents(HostId(99)).is_empty());
        assert_eq!(rs.top_k(HostId(99), 3).count(), 0);
        assert!(!rs.matches(HostId(99), HostId(10)));
    }

    #[test]
    fn empty_block_and_empty_ruleset() {
        let rs = mine_pairs(&[], 1);
        assert!(rs.is_empty());
        assert_eq!(rs.rule_count(), 0);
        let e = RuleSet::empty();
        assert!(!e.has_antecedent(HostId(0)));
    }

    #[test]
    fn confidence_pruning_cuts_minor_routes() {
        // host 1: via 10 has confidence 5/9, via 11 -> 3/9, via 12 -> 1/9.
        let rs = mine_pairs_with_confidence(&block(), 1, 0.34);
        assert!(rs.matches(HostId(1), HostId(10)));
        assert!(!rs.matches(HostId(1), HostId(11)));
        assert!(!rs.matches(HostId(1), HostId(12)));
        // host 2: via 10 has confidence 1.0.
        assert!(rs.matches(HostId(2), HostId(10)));
    }

    #[test]
    fn confidence_zero_equals_plain_mining() {
        let a = mine_pairs(&block(), 2);
        let b = mine_pairs_with_confidence(&block(), 2, 0.0);
        let mut ra: Vec<_> = a.iter().collect();
        let mut rb: Vec<_> = b.iter().collect();
        ra.sort_unstable();
        rb.sort_unstable();
        assert_eq!(ra, rb);
    }

    #[test]
    fn iter_exposes_all_rules() {
        let rs = mine_pairs(&block(), 1);
        let mut rows: Vec<_> = rs.iter().collect();
        rows.sort_unstable();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], (HostId(1), HostId(10), 5));
    }

    fn sorted_rows(rs: &RuleSet) -> Vec<(HostId, HostId, u64)> {
        let mut rows: Vec<_> = rs.iter().collect();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn sharded_miner_matches_reference_on_small_blocks() {
        for threshold in 1..=5 {
            for shards in [1, 2, 3, 8] {
                let reference = mine_pairs(&block(), threshold);
                let sharded = mine_pairs_sharded(&block(), threshold, shards);
                assert_eq!(
                    sorted_rows(&reference),
                    sorted_rows(&sharded),
                    "threshold {threshold}, {shards} shards"
                );
                assert_eq!(sharded.min_support(), reference.min_support());
                assert_eq!(sharded.source_pairs(), reference.source_pairs());
            }
        }
    }

    #[test]
    fn sharded_miner_matches_reference_above_fanout_cutoff() {
        // Big enough that a multi-shard run actually spawns workers.
        let big: Vec<PairRecord> = (0..40_000u64)
            .map(|i| pair(i, (i % 37) as u32, (i % 11) as u32 + 100))
            .collect();
        let reference = mine_pairs(&big, 30);
        for shards in [1, 2, 4] {
            let sharded = mine_pairs_sharded(&big, 30, shards);
            assert_eq!(
                sorted_rows(&reference),
                sorted_rows(&sharded),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn miner_scratch_reuse_is_stateless_across_blocks() {
        let mut miner = PairMiner::sharded(4);
        // Mine a large block, then a small one, then re-mine the first:
        // residue from earlier blocks must never leak into later ones.
        let a: Vec<PairRecord> = (0..20_000u64)
            .map(|i| pair(i, (i % 13) as u32, (i % 7) as u32 + 50))
            .collect();
        let b = block();
        let first = miner.mine(&a, 3);
        assert_eq!(
            sorted_rows(&miner.mine(&b, 2)),
            sorted_rows(&mine_pairs(&b, 2))
        );
        assert_eq!(sorted_rows(&miner.mine(&a, 3)), sorted_rows(&first));
        assert_eq!(sorted_rows(&first), sorted_rows(&mine_pairs(&a, 3)));
    }

    #[test]
    fn sharded_miner_handles_empty_block() {
        let mut miner = PairMiner::sharded(4);
        let rs = miner.mine(&[], 1);
        assert!(rs.is_empty());
        assert_eq!(rs.source_pairs(), 0);
    }

    #[test]
    fn zero_host_ids_are_real_keys() {
        // (0, 0) packs to key 0 — the table must not confuse it with an
        // empty slot.
        let zeros: Vec<PairRecord> = (0..10).map(|i| pair(i, 0, 0)).collect();
        let rs = PairMiner::new().mine(&zeros, 1);
        assert!(rs.matches(HostId(0), HostId(0)));
        assert_eq!(rs.consequents(HostId(0)), &[(HostId(0), 10)]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_shards_rejected() {
        PairMiner::sharded(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sharded_rejects_zero_support() {
        PairMiner::new().mine(&block(), 0);
    }
}
