//! Host-pair rule sets — the paper's §III-B specialization.
//!
//! Routing rules have the form `{host1} → {host2}`: `host1` is a neighbor
//! that forwarded queries to us, `host2` a neighbor through which replies
//! to those queries came back. Because antecedent and consequent are
//! singletons, mining reduces to counting `(src, via)` combinations in a
//! block and pruning the ones seen fewer than `min_support` times
//! ("support pruning"), exactly as the paper's simulator stored them:
//!
//! > "The database table representing the rule sets contains three values
//! > for each entry: the host from which one or more queries were
//! > received, a node that returned a reply message in response to one of
//! > those queries, and the number of times that that node sent reply
//! > messages in response to queries sent from the node that forwarded
//! > the query."

use arq_trace::record::{HostId, PairRecord};
use std::collections::HashMap;

/// A mined rule set: antecedent host → consequent hosts ranked by
/// descending support (ties broken by host id for determinism).
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: HashMap<HostId, Vec<(HostId, u64)>>,
    min_support: u64,
    source_pairs: usize,
}

impl RuleSet {
    /// An empty rule set (matches nothing).
    pub fn empty() -> Self {
        RuleSet::default()
    }

    /// Builds a rule set from explicit `(src, via, count)` rows, applying
    /// the same support pruning and ranking as [`mine_pairs`]. Used by
    /// alternative counting backends (e.g. the streaming maintainer).
    pub fn from_rows(
        rows: impl IntoIterator<Item = (HostId, HostId, u64)>,
        min_support: u64,
        source_pairs: usize,
    ) -> Self {
        let counts: HashMap<(HostId, HostId), u64> =
            rows.into_iter().map(|(s, v, c)| ((s, v), c)).collect();
        Self::from_counts(counts, min_support, source_pairs)
    }

    fn from_counts(
        counts: HashMap<(HostId, HostId), u64>,
        min_support: u64,
        source_pairs: usize,
    ) -> Self {
        let mut rules: HashMap<HostId, Vec<(HostId, u64)>> = HashMap::new();
        for ((src, via), count) in counts {
            if count >= min_support {
                rules.entry(src).or_default().push((via, count));
            }
        }
        for conseq in rules.values_mut() {
            conseq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        RuleSet {
            rules,
            min_support,
            source_pairs,
        }
    }

    /// Whether any rule has `src` as antecedent.
    #[inline]
    pub fn has_antecedent(&self, src: HostId) -> bool {
        self.rules.contains_key(&src)
    }

    /// The ranked consequents for `src` (empty slice when uncovered).
    pub fn consequents(&self, src: HostId) -> &[(HostId, u64)] {
        self.rules.get(&src).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The top-`k` consequent hosts for `src` by support.
    pub fn top_k(&self, src: HostId, k: usize) -> impl Iterator<Item = HostId> + '_ {
        self.consequents(src).iter().take(k).map(|&(h, _)| h)
    }

    /// Whether the rule `{src} → {via}` is present.
    pub fn matches(&self, src: HostId, via: HostId) -> bool {
        self.consequents(src).iter().any(|&(h, _)| h == via)
    }

    /// Total number of rules (antecedent–consequent pairs).
    pub fn rule_count(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }

    /// Number of distinct antecedents.
    pub fn antecedent_count(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The support threshold the set was pruned with.
    pub fn min_support(&self) -> u64 {
        self.min_support
    }

    /// How many query–reply pairs the set was mined from.
    pub fn source_pairs(&self) -> usize {
        self.source_pairs
    }

    /// Iterates over `(antecedent, consequent, support)` rows.
    pub fn iter(&self) -> impl Iterator<Item = (HostId, HostId, u64)> + '_ {
        self.rules
            .iter()
            .flat_map(|(&src, conseq)| conseq.iter().map(move |&(via, c)| (src, via, c)))
    }
}

/// Mines a rule set from a block: counts `(src, via)` combinations and
/// prunes those seen fewer than `min_support` times.
pub fn mine_pairs(block: &[PairRecord], min_support: u64) -> RuleSet {
    assert!(min_support >= 1, "support threshold must be at least 1");
    let mut counts: HashMap<(HostId, HostId), u64> = HashMap::new();
    for p in block {
        *counts.entry((p.src, p.via)).or_insert(0) += 1;
    }
    RuleSet::from_counts(counts, min_support, block.len())
}

/// Mines with an additional confidence cut (§VI extension, experiment
/// E9): a rule `{src} → {via}` survives only if
/// `count(src, via) / count(src, ·) >= min_confidence`.
pub fn mine_pairs_with_confidence(
    block: &[PairRecord],
    min_support: u64,
    min_confidence: f64,
) -> RuleSet {
    assert!(min_support >= 1, "support threshold must be at least 1");
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence threshold out of range"
    );
    let mut counts: HashMap<(HostId, HostId), u64> = HashMap::new();
    let mut src_totals: HashMap<HostId, u64> = HashMap::new();
    for p in block {
        *counts.entry((p.src, p.via)).or_insert(0) += 1;
        *src_totals.entry(p.src).or_insert(0) += 1;
    }
    counts.retain(|(src, _), count| *count as f64 / src_totals[src] as f64 >= min_confidence);
    RuleSet::from_counts(counts, min_support, block.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_simkern::SimTime;
    use arq_trace::record::{Guid, QueryId};

    fn pair(i: u64, src: u32, via: u32) -> PairRecord {
        PairRecord {
            time: SimTime::from_ticks(i),
            guid: Guid(u128::from(i)),
            src: HostId(src),
            via: HostId(via),
            responder: HostId(999),
            query: QueryId(0),
        }
    }

    /// Block: host 1 answered 5x via 10, 3x via 11, 1x via 12;
    /// host 2 answered 2x via 10.
    fn block() -> Vec<PairRecord> {
        let mut v = Vec::new();
        let mut i = 0;
        for _ in 0..5 {
            v.push(pair(i, 1, 10));
            i += 1;
        }
        for _ in 0..3 {
            v.push(pair(i, 1, 11));
            i += 1;
        }
        v.push(pair(i, 1, 12));
        i += 1;
        for _ in 0..2 {
            v.push(pair(i, 2, 10));
            i += 1;
        }
        v
    }

    #[test]
    fn support_pruning() {
        let rs = mine_pairs(&block(), 2);
        assert!(rs.matches(HostId(1), HostId(10)));
        assert!(rs.matches(HostId(1), HostId(11)));
        assert!(
            !rs.matches(HostId(1), HostId(12)),
            "support-1 rule survived"
        );
        assert!(rs.matches(HostId(2), HostId(10)));
        assert_eq!(rs.rule_count(), 3);
        assert_eq!(rs.antecedent_count(), 2);
        assert_eq!(rs.source_pairs(), 11);
        assert_eq!(rs.min_support(), 2);
    }

    #[test]
    fn higher_threshold_gives_subset() {
        let loose = mine_pairs(&block(), 1);
        let tight = mine_pairs(&block(), 4);
        assert!(tight.rule_count() < loose.rule_count());
        for (src, via, _) in tight.iter() {
            assert!(loose.matches(src, via));
        }
    }

    #[test]
    fn consequents_ranked_by_support() {
        let rs = mine_pairs(&block(), 1);
        let ranked: Vec<(HostId, u64)> = rs.consequents(HostId(1)).to_vec();
        assert_eq!(
            ranked,
            vec![(HostId(10), 5), (HostId(11), 3), (HostId(12), 1)]
        );
        let top2: Vec<HostId> = rs.top_k(HostId(1), 2).collect();
        assert_eq!(top2, vec![HostId(10), HostId(11)]);
    }

    #[test]
    fn rank_ties_break_by_host_id() {
        let mut v = Vec::new();
        for i in 0..3 {
            v.push(pair(i, 1, 30));
        }
        for i in 3..6 {
            v.push(pair(i, 1, 20));
        }
        let rs = mine_pairs(&v, 1);
        let ranked: Vec<HostId> = rs.top_k(HostId(1), 5).collect();
        assert_eq!(ranked, vec![HostId(20), HostId(30)]);
    }

    #[test]
    fn uncovered_antecedent() {
        let rs = mine_pairs(&block(), 1);
        assert!(!rs.has_antecedent(HostId(99)));
        assert!(rs.consequents(HostId(99)).is_empty());
        assert_eq!(rs.top_k(HostId(99), 3).count(), 0);
        assert!(!rs.matches(HostId(99), HostId(10)));
    }

    #[test]
    fn empty_block_and_empty_ruleset() {
        let rs = mine_pairs(&[], 1);
        assert!(rs.is_empty());
        assert_eq!(rs.rule_count(), 0);
        let e = RuleSet::empty();
        assert!(!e.has_antecedent(HostId(0)));
    }

    #[test]
    fn confidence_pruning_cuts_minor_routes() {
        // host 1: via 10 has confidence 5/9, via 11 -> 3/9, via 12 -> 1/9.
        let rs = mine_pairs_with_confidence(&block(), 1, 0.34);
        assert!(rs.matches(HostId(1), HostId(10)));
        assert!(!rs.matches(HostId(1), HostId(11)));
        assert!(!rs.matches(HostId(1), HostId(12)));
        // host 2: via 10 has confidence 1.0.
        assert!(rs.matches(HostId(2), HostId(10)));
    }

    #[test]
    fn confidence_zero_equals_plain_mining() {
        let a = mine_pairs(&block(), 2);
        let b = mine_pairs_with_confidence(&block(), 2, 0.0);
        let mut ra: Vec<_> = a.iter().collect();
        let mut rb: Vec<_> = b.iter().collect();
        ra.sort_unstable();
        rb.sort_unstable();
        assert_eq!(ra, rb);
    }

    #[test]
    fn iter_exposes_all_rules() {
        let rs = mine_pairs(&block(), 1);
        let mut rows: Vec<_> = rs.iter().collect();
        rows.sort_unstable();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], (HostId(1), HostId(10), 5));
    }
}
