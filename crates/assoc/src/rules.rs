//! Association-rule generation and the classical interestingness
//! measures.
//!
//! From each frequent itemset `X` (|X| ≥ 2), every partition into a
//! non-empty antecedent `A` and consequent `C = X \ A` yields a candidate
//! rule `A → C`. Rules are scored by:
//!
//! * **support** — fraction of transactions containing `A ∪ C`;
//! * **confidence** — `sup(A ∪ C) / sup(A)`;
//! * **lift** — `confidence / sup(C)`; 1 means independence;
//! * **conviction** — `(1 − sup(C)) / (1 − confidence)`; ∞ for exact
//!   implications.
//!
//! Pruning by minimum support happened during mining (the itemsets are
//! already frequent); this module prunes by minimum confidence — the
//! paper's §VI proposes confidence-based pruning as an extension, and
//! experiment E9 uses exactly this code.

use crate::apriori::FrequentItemset;
use crate::transaction::ItemId;
use std::collections::HashMap;

/// One association rule with its measures.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Antecedent items, sorted.
    pub antecedent: Vec<ItemId>,
    /// Consequent items, sorted.
    pub consequent: Vec<ItemId>,
    /// Absolute support count of antecedent ∪ consequent.
    pub count: u64,
    /// Relative support.
    pub support: f64,
    /// Confidence.
    pub confidence: f64,
    /// Lift.
    pub lift: f64,
    /// Conviction (`f64::INFINITY` for confidence = 1).
    pub conviction: f64,
}

/// Generates all rules with `confidence >= min_confidence` from a set of
/// frequent itemsets (as produced by [`crate::apriori::apriori`] or
/// [`crate::fpgrowth::fpgrowth`]).
///
/// `n_transactions` is the size of the mined database, needed to turn
/// counts into relative measures.
pub fn generate_rules(
    frequent: &[FrequentItemset],
    n_transactions: u64,
    min_confidence: f64,
) -> Vec<Rule> {
    assert!(n_transactions > 0, "empty database has no rules");
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence threshold out of range"
    );
    let counts: HashMap<&[ItemId], u64> = frequent
        .iter()
        .map(|f| (f.items.as_slice(), f.count))
        .collect();

    let mut rules = Vec::new();
    for f in frequent.iter().filter(|f| f.items.len() >= 2) {
        let n = f.items.len();
        // Enumerate proper, non-empty subsets via bitmasks.
        for mask in 1..((1u32 << n) - 1) {
            let mut antecedent = Vec::new();
            let mut consequent = Vec::new();
            for (i, &item) in f.items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    antecedent.push(item);
                } else {
                    consequent.push(item);
                }
            }
            let ante_count = match counts.get(antecedent.as_slice()) {
                Some(&c) => c,
                // The antecedent of a frequent itemset is itself frequent
                // (anti-monotonicity); a miss means the caller passed an
                // incomplete collection.
                None => panic!("antecedent {antecedent:?} missing from frequent set"),
            };
            let confidence = f.count as f64 / ante_count as f64;
            if confidence < min_confidence {
                continue;
            }
            let cons_count = *counts
                .get(consequent.as_slice())
                .expect("consequent missing from frequent set");
            let support = f.count as f64 / n_transactions as f64;
            let cons_support = cons_count as f64 / n_transactions as f64;
            let lift = confidence / cons_support;
            let conviction = if confidence >= 1.0 {
                f64::INFINITY
            } else {
                (1.0 - cons_support) / (1.0 - confidence)
            };
            rules.push(Rule {
                antecedent,
                consequent,
                count: f.count,
                support,
                confidence,
                lift,
                conviction,
            });
        }
    }
    // Deterministic, most-interesting-first ordering.
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap()
            .then(b.count.cmp(&a.count))
            .then(a.antecedent.cmp(&b.antecedent))
            .then(a.consequent.cmp(&b.consequent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use crate::transaction::TransactionDb;

    fn market() -> TransactionDb {
        let mut db = TransactionDb::new();
        db.add_named(&["bread", "milk"]);
        db.add_named(&["bread", "diapers", "beer", "eggs"]);
        db.add_named(&["milk", "diapers", "beer", "cola"]);
        db.add_named(&["bread", "milk", "diapers", "beer"]);
        db.add_named(&["bread", "milk", "diapers", "cola"]);
        db
    }

    fn rule<'a>(rules: &'a [Rule], db: &TransactionDb, a: &[&str], c: &[&str]) -> Option<&'a Rule> {
        let mut ante: Vec<ItemId> = a.iter().map(|n| db.lookup(n).unwrap()).collect();
        let mut cons: Vec<ItemId> = c.iter().map(|n| db.lookup(n).unwrap()).collect();
        ante.sort_unstable();
        cons.sort_unstable();
        rules
            .iter()
            .find(|r| r.antecedent == ante && r.consequent == cons)
    }

    #[test]
    fn diapers_imply_beer() {
        let db = market();
        let frequent = apriori(&db, 2);
        let rules = generate_rules(&frequent, db.len() as u64, 0.0);
        let r = rule(&rules, &db, &["diapers"], &["beer"]).unwrap();
        // sup({diapers, beer}) = 3/5, sup(diapers) = 4/5 -> conf 0.75.
        assert_eq!(r.count, 3);
        assert!((r.support - 0.6).abs() < 1e-12);
        assert!((r.confidence - 0.75).abs() < 1e-12);
        // sup(beer) = 3/5 -> lift = 0.75 / 0.6 = 1.25.
        assert!((r.lift - 1.25).abs() < 1e-12);
        // conviction = (1 - 0.6) / (1 - 0.75) = 1.6.
        assert!((r.conviction - 1.6).abs() < 1e-12);
    }

    #[test]
    fn beer_implies_diapers_has_confidence_one() {
        let db = market();
        let frequent = apriori(&db, 2);
        let rules = generate_rules(&frequent, db.len() as u64, 0.0);
        let r = rule(&rules, &db, &["beer"], &["diapers"]).unwrap();
        assert!((r.confidence - 1.0).abs() < 1e-12);
        assert!(r.conviction.is_infinite());
        // Exact implications sort first.
        assert!((rules[0].confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_pruning_is_monotone() {
        let db = market();
        let frequent = apriori(&db, 2);
        let loose = generate_rules(&frequent, db.len() as u64, 0.0);
        let tight = generate_rules(&frequent, db.len() as u64, 0.8);
        assert!(tight.len() < loose.len());
        for r in &tight {
            assert!(r.confidence >= 0.8);
            assert!(loose.contains(r), "tight rule missing from loose set");
        }
    }

    #[test]
    fn multi_item_antecedents_are_generated() {
        let db = market();
        let frequent = apriori(&db, 2);
        let rules = generate_rules(&frequent, db.len() as u64, 0.0);
        assert!(
            rules.iter().any(|r| r.antecedent.len() == 2),
            "no 2-item antecedents"
        );
        // Rule from {bread, milk, diapers} (count 2): {bread, milk} -> {diapers}.
        let r = rule(&rules, &db, &["bread", "milk"], &["diapers"]).unwrap();
        assert_eq!(r.count, 2);
        assert!((r.confidence - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_rules_from_singletons_only() {
        let mut db = TransactionDb::new();
        db.add_named(&["a"]);
        db.add_named(&["b"]);
        let frequent = apriori(&db, 1);
        let rules = generate_rules(&frequent, 2, 0.0);
        assert!(rules.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty database")]
    fn zero_transactions_rejected() {
        generate_rules(&[], 0, 0.5);
    }
}
