//! Association-rule generation and the classical interestingness
//! measures.
//!
//! From each frequent itemset `X` (|X| ≥ 2), every partition into a
//! non-empty antecedent `A` and consequent `C = X \ A` yields a candidate
//! rule `A → C`. Rules are scored by:
//!
//! * **support** — fraction of transactions containing `A ∪ C`;
//! * **confidence** — `sup(A ∪ C) / sup(A)`;
//! * **lift** — `confidence / sup(C)`; 1 means independence;
//! * **conviction** — `(1 − sup(C)) / (1 − confidence)`; ∞ for exact
//!   implications.
//!
//! Pruning by minimum support happened during mining (the itemsets are
//! already frequent); this module prunes by minimum confidence — the
//! paper's §VI proposes confidence-based pruning as an extension, and
//! experiment E9 uses exactly this code.

use crate::apriori::FrequentItemset;
use crate::transaction::ItemId;
use arq_simkern::{Json, ToJson};
use std::collections::HashMap;

/// One association rule with its measures.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Antecedent items, sorted.
    pub antecedent: Vec<ItemId>,
    /// Consequent items, sorted.
    pub consequent: Vec<ItemId>,
    /// Absolute support count of antecedent ∪ consequent.
    pub count: u64,
    /// Relative support.
    pub support: f64,
    /// Confidence.
    pub confidence: f64,
    /// Lift.
    pub lift: f64,
    /// Conviction (`f64::INFINITY` for confidence = 1).
    pub conviction: f64,
}

/// The string tag standing in for an infinite conviction in JSON, where
/// IEEE ∞ has no literal (a raw `Json::Float(INFINITY)` would serialize
/// as `null` and destroy the value on a round-trip).
const CONVICTION_INF: &str = "inf";

impl ToJson for Rule {
    fn to_json(&self) -> Json {
        let items = |v: &[ItemId]| Json::Arr(v.iter().map(|i| Json::from(i.0)).collect());
        Json::obj([
            ("antecedent", items(&self.antecedent)),
            ("consequent", items(&self.consequent)),
            ("count", Json::from(self.count)),
            ("support", Json::from(self.support)),
            ("confidence", Json::from(self.confidence)),
            ("lift", Json::from(self.lift)),
            (
                "conviction",
                if self.conviction.is_finite() {
                    Json::from(self.conviction)
                } else {
                    Json::Str(CONVICTION_INF.to_string())
                },
            ),
        ])
    }
}

impl Rule {
    /// Reads a rule back from its [`ToJson`] form. Accepts the tagged
    /// `"inf"` conviction, plain numbers, and — for artifacts written
    /// before the tag existed — `null`, which can only have come from an
    /// exact implication's `f64::INFINITY`.
    pub fn from_json(json: &Json) -> Option<Rule> {
        let items = |key: &str| -> Option<Vec<ItemId>> {
            json.get(key)?
                .as_array()?
                .iter()
                .map(|v| v.as_f64().map(|f| ItemId(f as u32)))
                .collect()
        };
        let conviction = match json.get("conviction")? {
            Json::Null => f64::INFINITY,
            Json::Str(tag) if tag == CONVICTION_INF => f64::INFINITY,
            other => other.as_f64()?,
        };
        Some(Rule {
            antecedent: items("antecedent")?,
            consequent: items("consequent")?,
            count: json.get("count")?.as_f64()? as u64,
            support: json.get("support")?.as_f64()?,
            confidence: json.get("confidence")?.as_f64()?,
            lift: json.get("lift")?.as_f64()?,
            conviction,
        })
    }
}

/// Generates all rules with `confidence >= min_confidence` from a set of
/// frequent itemsets (as produced by [`crate::apriori::apriori`] or
/// [`crate::fpgrowth::fpgrowth`]).
///
/// `n_transactions` is the size of the mined database, needed to turn
/// counts into relative measures.
pub fn generate_rules(
    frequent: &[FrequentItemset],
    n_transactions: u64,
    min_confidence: f64,
) -> Vec<Rule> {
    assert!(n_transactions > 0, "empty database has no rules");
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence threshold out of range"
    );
    let counts: HashMap<&[ItemId], u64> = frequent
        .iter()
        .map(|f| (f.items.as_slice(), f.count))
        .collect();

    let mut rules = Vec::new();
    for f in frequent.iter().filter(|f| f.items.len() >= 2) {
        let n = f.items.len();
        // Enumerate proper, non-empty subsets via bitmasks.
        for mask in 1..((1u32 << n) - 1) {
            let mut antecedent = Vec::new();
            let mut consequent = Vec::new();
            for (i, &item) in f.items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    antecedent.push(item);
                } else {
                    consequent.push(item);
                }
            }
            let ante_count = match counts.get(antecedent.as_slice()) {
                Some(&c) => c,
                // The antecedent of a frequent itemset is itself frequent
                // (anti-monotonicity); a miss means the caller passed an
                // incomplete collection.
                None => panic!("antecedent {antecedent:?} missing from frequent set"),
            };
            let confidence = f.count as f64 / ante_count as f64;
            if confidence < min_confidence {
                continue;
            }
            let cons_count = *counts
                .get(consequent.as_slice())
                .expect("consequent missing from frequent set");
            let support = f.count as f64 / n_transactions as f64;
            let cons_support = cons_count as f64 / n_transactions as f64;
            let lift = confidence / cons_support;
            let conviction = if confidence >= 1.0 {
                f64::INFINITY
            } else {
                (1.0 - cons_support) / (1.0 - confidence)
            };
            rules.push(Rule {
                antecedent,
                consequent,
                count: f.count,
                support,
                confidence,
                lift,
                conviction,
            });
        }
    }
    // Deterministic, most-interesting-first ordering. `total_cmp` (not
    // `partial_cmp().unwrap()`) so exact confidence ties — common when
    // many itemsets share a count ratio — fall through to the item-wise
    // tiebreak instead of depending on the unstable enumeration order.
    rules.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then_with(|| a.antecedent.cmp(&b.antecedent))
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use crate::transaction::TransactionDb;

    fn market() -> TransactionDb {
        let mut db = TransactionDb::new();
        db.add_named(&["bread", "milk"]);
        db.add_named(&["bread", "diapers", "beer", "eggs"]);
        db.add_named(&["milk", "diapers", "beer", "cola"]);
        db.add_named(&["bread", "milk", "diapers", "beer"]);
        db.add_named(&["bread", "milk", "diapers", "cola"]);
        db
    }

    fn rule<'a>(rules: &'a [Rule], db: &TransactionDb, a: &[&str], c: &[&str]) -> Option<&'a Rule> {
        let mut ante: Vec<ItemId> = a.iter().map(|n| db.lookup(n).unwrap()).collect();
        let mut cons: Vec<ItemId> = c.iter().map(|n| db.lookup(n).unwrap()).collect();
        ante.sort_unstable();
        cons.sort_unstable();
        rules
            .iter()
            .find(|r| r.antecedent == ante && r.consequent == cons)
    }

    #[test]
    fn diapers_imply_beer() {
        let db = market();
        let frequent = apriori(&db, 2);
        let rules = generate_rules(&frequent, db.len() as u64, 0.0);
        let r = rule(&rules, &db, &["diapers"], &["beer"]).unwrap();
        // sup({diapers, beer}) = 3/5, sup(diapers) = 4/5 -> conf 0.75.
        assert_eq!(r.count, 3);
        assert!((r.support - 0.6).abs() < 1e-12);
        assert!((r.confidence - 0.75).abs() < 1e-12);
        // sup(beer) = 3/5 -> lift = 0.75 / 0.6 = 1.25.
        assert!((r.lift - 1.25).abs() < 1e-12);
        // conviction = (1 - 0.6) / (1 - 0.75) = 1.6.
        assert!((r.conviction - 1.6).abs() < 1e-12);
    }

    #[test]
    fn beer_implies_diapers_has_confidence_one() {
        let db = market();
        let frequent = apriori(&db, 2);
        let rules = generate_rules(&frequent, db.len() as u64, 0.0);
        let r = rule(&rules, &db, &["beer"], &["diapers"]).unwrap();
        assert!((r.confidence - 1.0).abs() < 1e-12);
        assert!(r.conviction.is_infinite());
        // Exact implications sort first.
        assert!((rules[0].confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_pruning_is_monotone() {
        let db = market();
        let frequent = apriori(&db, 2);
        let loose = generate_rules(&frequent, db.len() as u64, 0.0);
        let tight = generate_rules(&frequent, db.len() as u64, 0.8);
        assert!(tight.len() < loose.len());
        for r in &tight {
            assert!(r.confidence >= 0.8);
            assert!(loose.contains(r), "tight rule missing from loose set");
        }
    }

    #[test]
    fn multi_item_antecedents_are_generated() {
        let db = market();
        let frequent = apriori(&db, 2);
        let rules = generate_rules(&frequent, db.len() as u64, 0.0);
        assert!(
            rules.iter().any(|r| r.antecedent.len() == 2),
            "no 2-item antecedents"
        );
        // Rule from {bread, milk, diapers} (count 2): {bread, milk} -> {diapers}.
        let r = rule(&rules, &db, &["bread", "milk"], &["diapers"]).unwrap();
        assert_eq!(r.count, 2);
        assert!((r.confidence - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_rules_from_singletons_only() {
        let mut db = TransactionDb::new();
        db.add_named(&["a"]);
        db.add_named(&["b"]);
        let frequent = apriori(&db, 1);
        let rules = generate_rules(&frequent, 2, 0.0);
        assert!(rules.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty database")]
    fn zero_transactions_rejected() {
        generate_rules(&[], 0, 0.5);
    }

    /// The market basket yields several exact implications (confidence
    /// exactly 1.0) — with `partial_cmp` their relative order was
    /// whatever the subset enumeration happened to produce. The total
    /// order pins every tie to (antecedent, consequent) ascending.
    #[test]
    fn exact_confidence_ties_order_by_items() {
        let db = market();
        let frequent = apriori(&db, 2);
        let rules = generate_rules(&frequent, db.len() as u64, 0.0);
        let ties: Vec<&Rule> = rules.iter().filter(|r| r.confidence == 1.0).collect();
        assert!(ties.len() >= 3, "expected several exact implications");
        for pair in ties.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(
                (a.antecedent.clone(), a.consequent.clone())
                    < (b.antecedent.clone(), b.consequent.clone()),
                "tied rules out of item order: {a:?} before {b:?}"
            );
        }
        // And the full ranking is the documented lexicographic key.
        let mut resorted = rules.clone();
        resorted.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then_with(|| a.antecedent.cmp(&b.antecedent))
                .then_with(|| a.consequent.cmp(&b.consequent))
        });
        assert_eq!(rules, resorted);
    }

    /// An exact implication's infinite conviction must survive a JSON
    /// round-trip (a raw float would serialize as `null`), and legacy
    /// `null` convictions must still read back as ∞.
    #[test]
    fn conviction_round_trips_through_json() {
        let db = market();
        let frequent = apriori(&db, 2);
        let rules = generate_rules(&frequent, db.len() as u64, 0.0);
        let exact = rules.iter().find(|r| r.conviction.is_infinite()).unwrap();
        let finite = rules.iter().find(|r| r.conviction.is_finite()).unwrap();
        for r in [exact, finite] {
            let text = r.to_json().to_string();
            assert!(!text.contains("null"), "lossy serialization: {text}");
            let back = Rule::from_json(&arq_simkern::json::parse(&text).unwrap()).unwrap();
            assert_eq!(&back, r, "round-trip changed the rule");
        }
        // Pre-tag artifacts serialized ∞ as `null`; keep them readable.
        let mut legacy = exact.to_json();
        if let Json::Obj(fields) = &mut legacy {
            for (k, v) in fields.iter_mut() {
                if k == "conviction" {
                    *v = Json::Null;
                }
            }
        }
        let back = Rule::from_json(&legacy).unwrap();
        assert!(back.conviction.is_infinite());
    }
}
