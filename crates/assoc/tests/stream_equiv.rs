//! Streaming-equivalence properties for the online maintainers.
//!
//! These pin the contract `arq serve`'s checkpoint/restore is built on:
//! a maintainer fed block-by-block — with an arbitrary snapshot/restore
//! round trip at every block boundary — must reach exactly the same
//! [`RuleSet`] digest as one fed the concatenated trace in a single
//! batch. Randomness is hand-rolled over the workspace RNG (the
//! `proptest` feature is default-off), so the cases are deterministic
//! and always run.

use arq_assoc::{DecayedPairCounts, LossyPairCounts};
use arq_simkern::rng::Rng64;
use arq_trace::record::HostId;

/// A random trace: `len` (src, via) observations over a small host
/// universe, so rules actually form and decay/eviction both trigger.
fn random_trace(rng: &mut Rng64, len: usize) -> Vec<(HostId, HostId)> {
    let hosts = 2 + rng.below(12) as u32;
    (0..len)
        .map(|_| {
            (
                HostId(rng.below(u64::from(hosts)) as u32),
                HostId(100 + rng.below(u64::from(hosts)) as u32),
            )
        })
        .collect()
}

/// Splits `len` into random nonempty block sizes.
fn random_blocks(rng: &mut Rng64, len: usize) -> Vec<usize> {
    let mut blocks = Vec::new();
    let mut left = len;
    while left > 0 {
        let take = (1 + rng.below(left.min(97) as u64) as usize).min(left);
        blocks.push(take);
        left -= take;
    }
    blocks
}

#[test]
fn decayed_block_feed_with_restore_matches_batch() {
    let mut rng = Rng64::seed_from(0xA11CE);
    for case in 0..120 {
        let len = 1 + rng.below(800) as usize;
        let trace = random_trace(&mut rng, len);
        let half_life = 10.0 + rng.f64() * 500.0;
        let threshold = 1.0 + rng.below(4) as f64;

        let mut batch = DecayedPairCounts::new(half_life);
        for &(s, v) in &trace {
            batch.observe(s, v);
        }

        // Block-by-block, with a snapshot/restore round trip (the
        // checkpoint/restart path) between every pair of blocks.
        let mut streamed = DecayedPairCounts::new(half_life);
        let mut cursor = 0;
        for block in random_blocks(&mut rng, len) {
            for &(s, v) in &trace[cursor..cursor + block] {
                streamed.observe(s, v);
            }
            cursor += block;
            streamed = DecayedPairCounts::restore(&streamed.snapshot());
        }

        assert_eq!(batch.observations(), streamed.observations(), "case {case}");
        assert_eq!(
            batch.ruleset(threshold).digest(),
            streamed.ruleset(threshold).digest(),
            "case {case}: len {len} half_life {half_life} threshold {threshold}"
        );
    }
}

#[test]
fn lossy_block_feed_with_restore_matches_batch() {
    let mut rng = Rng64::seed_from(0xB0B);
    for case in 0..120 {
        let len = 1 + rng.below(800) as usize;
        let trace = random_trace(&mut rng, len);
        let epsilon = 0.001 + rng.f64() * 0.05;
        let support = 1 + rng.below(4);

        let mut batch = LossyPairCounts::new(epsilon);
        for &(s, v) in &trace {
            batch.observe(s, v);
        }

        let mut streamed = LossyPairCounts::new(epsilon);
        let mut cursor = 0;
        for block in random_blocks(&mut rng, len) {
            for &(s, v) in &trace[cursor..cursor + block] {
                streamed.observe(s, v);
            }
            cursor += block;
            streamed = LossyPairCounts::restore(&streamed.snapshot());
        }

        assert_eq!(batch.observations(), streamed.observations(), "case {case}");
        assert_eq!(
            batch.ruleset(support).digest(),
            streamed.ruleset(support).digest(),
            "case {case}: len {len} epsilon {epsilon} support {support}"
        );
    }
}

#[test]
fn snapshot_restore_is_idempotent() {
    let mut rng = Rng64::seed_from(7);
    let trace = random_trace(&mut rng, 500);
    let mut m = DecayedPairCounts::new(123.0);
    for &(s, v) in &trace {
        m.observe(s, v);
    }
    let once = m.snapshot();
    let twice = DecayedPairCounts::restore(&once).snapshot();
    assert_eq!(once, twice);

    let mut l = LossyPairCounts::new(0.01);
    for &(s, v) in &trace {
        l.observe(s, v);
    }
    let once = l.snapshot();
    let twice = LossyPairCounts::restore(&once).snapshot();
    assert_eq!(once, twice);
}
