// Property tests require the external `proptest` crate; the feature is
// default-off so offline builds skip this file entirely.
#![cfg(feature = "proptest")]

//! Property-based tests for association analysis.

use arq_assoc::apriori::apriori;
use arq_assoc::eclat::eclat;
use arq_assoc::fpgrowth::fpgrowth;
use arq_assoc::measures::ruleset_test;
use arq_assoc::pairs::{mine_pairs, mine_pairs_with_confidence};
use arq_assoc::rules::generate_rules;
use arq_assoc::{DecayedPairCounts, ItemId, TransactionDb};
use arq_simkern::SimTime;
use arq_trace::record::{Guid, HostId, PairRecord, QueryId};
use proptest::prelude::*;

fn arb_transactions() -> impl Strategy<Value = Vec<Vec<ItemId>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..12).prop_map(ItemId), 1..6),
        1..60,
    )
}

fn arb_pairs() -> impl Strategy<Value = Vec<PairRecord>> {
    proptest::collection::vec((0u32..10, 0u32..10), 0..300).prop_map(|hosts| {
        hosts
            .into_iter()
            .enumerate()
            .map(|(i, (s, v))| PairRecord {
                time: SimTime::from_ticks(i as u64),
                guid: Guid(i as u128),
                src: HostId(s),
                via: HostId(100 + v),
                responder: HostId(999),
                query: QueryId(0),
            })
            .collect()
    })
}

proptest! {
    /// Apriori, FP-Growth, and Eclat agree exactly on arbitrary
    /// databases and thresholds.
    #[test]
    fn all_miners_agree(txs in arb_transactions(), min_count in 1u64..8) {
        let mut db = TransactionDb::new();
        for t in txs {
            db.add(t);
        }
        let a = apriori(&db, min_count);
        prop_assert_eq!(&a, &fpgrowth(&db, min_count));
        prop_assert_eq!(&a, &eclat(&db, min_count));
    }

    /// Every reported frequent itemset has its exact support count, and
    /// support is anti-monotone under item removal.
    #[test]
    fn frequent_itemsets_sound(txs in arb_transactions(), min_count in 1u64..6) {
        let mut db = TransactionDb::new();
        for t in txs {
            db.add(t);
        }
        let sets = apriori(&db, min_count);
        for f in &sets {
            prop_assert!(f.count >= min_count);
            prop_assert_eq!(db.support_count(&f.items), f.count);
            if f.items.len() >= 2 {
                for skip in 0..f.items.len() {
                    let sub: Vec<ItemId> = f
                        .items
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != skip)
                        .map(|(_, &x)| x)
                        .collect();
                    prop_assert!(db.support_count(&sub) >= f.count);
                }
            }
        }
    }

    /// Generated rules have measures in their legal ranges, and
    /// confidence pruning yields a subset.
    #[test]
    fn rule_measures_in_range(txs in arb_transactions(), min_conf in 0.0f64..1.0) {
        let mut db = TransactionDb::new();
        for t in txs {
            db.add(t);
        }
        let frequent = apriori(&db, 1);
        let all = generate_rules(&frequent, db.len() as u64, 0.0);
        let pruned = generate_rules(&frequent, db.len() as u64, min_conf);
        for r in &all {
            prop_assert!(r.support > 0.0 && r.support <= 1.0);
            prop_assert!(r.confidence > 0.0 && r.confidence <= 1.0 + 1e-12);
            prop_assert!(r.lift > 0.0);
            prop_assert!(r.conviction >= 0.0 || r.conviction.is_infinite());
        }
        for r in &pruned {
            prop_assert!(r.confidence >= min_conf);
            prop_assert!(all.contains(r));
        }
    }

    /// Raising the support threshold mines a subset of rules.
    #[test]
    fn support_pruning_is_monotone(pairs in arb_pairs(), lo in 1u64..5, delta in 0u64..10) {
        let hi = lo + delta;
        let loose = mine_pairs(&pairs, lo);
        let tight = mine_pairs(&pairs, hi);
        for (src, via, count) in tight.iter() {
            prop_assert!(count >= hi);
            prop_assert!(loose.matches(src, via));
        }
        prop_assert!(tight.rule_count() <= loose.rule_count());
    }

    /// Confidence mining at zero equals plain mining.
    #[test]
    fn confidence_zero_is_identity(pairs in arb_pairs(), t in 1u64..6) {
        let a = mine_pairs(&pairs, t);
        let b = mine_pairs_with_confidence(&pairs, t, 0.0);
        let mut ra: Vec<_> = a.iter().collect();
        let mut rb: Vec<_> = b.iter().collect();
        ra.sort_unstable();
        rb.sort_unstable();
        prop_assert_eq!(ra, rb);
    }

    /// RULESET-TEST counts obey 0 ≤ s ≤ n ≤ N and both measures stay in
    /// [0, 1]; a rule set mined from the block itself at threshold 1 is
    /// perfect.
    #[test]
    fn measures_are_bounded(train in arb_pairs(), test in arb_pairs()) {
        let rules = mine_pairs(&train, 2);
        let m = ruleset_test(&rules, &test);
        prop_assert!(m.successes <= m.covered);
        prop_assert!(m.covered <= m.total);
        prop_assert!((0.0..=1.0).contains(&m.coverage()));
        prop_assert!((0.0..=1.0).contains(&m.success()));

        if !test.is_empty() {
            let self_rules = mine_pairs(&test, 1);
            let perfect = ruleset_test(&self_rules, &test);
            prop_assert_eq!(perfect.coverage(), 1.0);
            prop_assert_eq!(perfect.success(), 1.0);
        }
    }

    /// Without decay pressure, the decayed counter materializes the same
    /// rule set as block mining.
    #[test]
    fn decayed_counts_match_block_mining(pairs in arb_pairs(), t in 1u64..6) {
        let mut counts = DecayedPairCounts::new(1e12);
        for p in &pairs {
            counts.observe_pair(p);
        }
        let from_stream = counts.ruleset(t as f64);
        let from_block = mine_pairs(&pairs, t);
        let mut ra: Vec<_> = from_stream.iter().collect();
        let mut rb: Vec<_> = from_block.iter().collect();
        ra.sort_unstable();
        rb.sort_unstable();
        prop_assert_eq!(ra, rb);
    }
}

proptest! {
    /// Lossy Counting never reports more than the true count and never
    /// undershoots by more than εN; associations above the guarantee are
    /// always tracked.
    #[test]
    fn lossy_counting_error_guarantee(
        stream in proptest::collection::vec((0u32..6, 0u32..6), 1..2_000),
        eps_milli in 5u32..200,
    ) {
        let eps = f64::from(eps_milli) / 1000.0;
        let mut lossy = arq_assoc::LossyPairCounts::new(eps);
        let mut exact: std::collections::HashMap<(u32, u32), u64> = Default::default();
        for &(s, v) in &stream {
            lossy.observe(HostId(s), HostId(100 + v));
            *exact.entry((s, v)).or_insert(0) += 1;
        }
        let n = stream.len() as f64;
        let slack = (eps * n).ceil() as u64;
        for (&(s, v), &true_count) in &exact {
            let reported = lossy.count(HostId(s), HostId(100 + v));
            prop_assert!(reported <= true_count, "overcount for ({s},{v})");
            prop_assert!(
                reported + slack >= true_count,
                "undercount beyond eps*N for ({s},{v}): {reported} vs {true_count}"
            );
        }
    }

    /// Sharded, column-interned counting is exactly the single-threaded
    /// reference for arbitrary blocks (including empty ones), support
    /// thresholds, and shard counts — the determinism contract behind
    /// the pipelined evaluator.
    #[test]
    fn sharded_mining_equals_reference(
        pairs in arb_pairs(),
        t in 1u64..6,
        shards in 1usize..9,
    ) {
        let reference = mine_pairs(&pairs, t);
        let mut miner = arq_assoc::PairMiner::sharded(shards);
        // Mine twice through the same miner: the scratch arena must be
        // stateless across blocks.
        let _ = miner.mine(&pairs, t);
        let sharded = miner.mine(&pairs, t);
        let mut ra: Vec<_> = reference.iter().collect();
        let mut rb: Vec<_> = sharded.iter().collect();
        ra.sort_unstable();
        rb.sort_unstable();
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(reference.rule_count(), sharded.rule_count());
        prop_assert_eq!(reference.antecedent_count(), sharded.antecedent_count());
        // The ranked consequent lists (what routing actually consults)
        // agree per antecedent, order included.
        for src in pairs.iter().map(|p| p.src).collect::<std::collections::HashSet<_>>() {
            prop_assert_eq!(reference.consequents(src), sharded.consequents(src));
        }
        // Free-function form agrees too.
        let free = arq_assoc::mine_pairs_sharded(&pairs, t, shards);
        let mut rc: Vec<_> = free.iter().collect();
        rc.sort_unstable();
        let mut rd: Vec<_> = sharded.iter().collect();
        rd.sort_unstable();
        prop_assert_eq!(rc, rd);
    }

    /// `top_k` is monotone in `k` (top-(k+1) extends top-k) and never
    /// admits a consequent below the support or confidence gates, for
    /// both maintainers.
    #[test]
    fn top_k_is_monotone_and_never_admits_subthreshold(
        stream in proptest::collection::vec((0u32..6, 0u32..6), 1..800),
        k in 1usize..6,
        support in 1u64..5,
        minconf_milli in 0u32..1000,
    ) {
        let minconf = f64::from(minconf_milli) / 1000.0;
        let mut decayed = DecayedPairCounts::new(1e12);
        let mut lossy = arq_assoc::LossyPairCounts::new(0.0001);
        for &(s, v) in &stream {
            decayed.observe(HostId(s), HostId(100 + v));
            lossy.observe(HostId(s), HostId(100 + v));
        }
        for s in 0u32..6 {
            let src = HostId(s);
            // k-monotonicity: top-(k+1) starts with top-k.
            let small = decayed.top_k_confident(src, k, support as f64, minconf);
            let large = decayed.top_k_confident(src, k + 1, support as f64, minconf);
            prop_assert_eq!(&large[..small.len().min(large.len())], &small[..]);
            let lsmall = lossy.top_k_confident(src, k, support, minconf);
            let llarge = lossy.top_k_confident(src, k + 1, support, minconf);
            prop_assert_eq!(&llarge[..lsmall.len().min(llarge.len())], &lsmall[..]);
            // No admitted consequent sits below either gate.
            let dtotal: f64 = (0u32..6).map(|v| decayed.count(src, HostId(100 + v))).sum();
            for &via in &large {
                let c = decayed.count(src, via);
                prop_assert!(c >= support as f64 - 1e-6);
                prop_assert!(c / dtotal >= minconf - 1e-6);
            }
            let ltotal: u64 = (0u32..6).map(|v| lossy.count(src, HostId(100 + v))).sum();
            for &via in &llarge {
                let c = lossy.count(src, via);
                prop_assert!(c >= support);
                prop_assert!(c as f64 / ltotal as f64 >= minconf - 1e-9);
            }
        }
    }

    /// Keyed mining with the plain `src` key is exactly `mine_pairs`.
    #[test]
    fn keyed_src_equals_plain(pairs in arb_pairs(), t in 1u64..6) {
        let keyed = arq_assoc::mine_keyed(&pairs, |p| p.src, t);
        let plain = mine_pairs(&pairs, t);
        let mut ka: Vec<_> = pairs
            .iter()
            .map(|p| p.src)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        ka.sort_unstable();
        for src in ka {
            prop_assert_eq!(keyed.consequents(src), plain.consequents(src));
        }
        prop_assert_eq!(keyed.rule_count(), plain.rule_count());
        // Measures agree on any test block.
        let m1 = arq_assoc::keyed_ruleset_test(&keyed, &pairs, |p| p.src);
        let m2 = ruleset_test(&plain, &pairs);
        prop_assert_eq!(m1, m2);
    }
}
