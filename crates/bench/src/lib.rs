//! # arq-bench — experiment harness and benchmarks
//!
//! Shared scaffolding for the `experiments` binary (which regenerates
//! every table and figure of the paper — see `EXPERIMENTS.md`) and the
//! Criterion microbenchmarks.
//!
//! The library half provides:
//!
//! * [`experiments`] — one function per experiment id (E1–E15), each
//!   returning a structured [`experiments::ExperimentReport`];
//! * [`report`] — Markdown/ASCII rendering of reports and the JSON
//!   persistence used by `results/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
