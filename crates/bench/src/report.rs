//! Rendering and persistence of experiment reports.

use crate::experiments::ExperimentReport;
use arq::simkern::Json;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders the full `EXPERIMENTS.md` document.
pub fn render_markdown(reports: &[ExperimentReport], header: &str) -> String {
    let mut out = String::new();
    out.push_str(header);
    for r in reports {
        let _ = writeln!(out, "\n## {} — {}\n", r.id, r.title);
        // Every experiment except the code-driven pair (E8 wall-clock
        // cost, E11 prebuilt adapted overlays) is a wrapper over a
        // checked-in sweep plan and can be rerun standalone.
        if matches!(r.id.as_str(), "E8" | "E11") {
            let _ = writeln!(
                out,
                "*Code-driven (no sweep plan — see `crates/bench/src/experiments/`).*\n"
            );
        } else {
            let plan = format!("plans/{}.toml", r.id.to_lowercase());
            let _ = writeln!(
                out,
                "**Plan:** [`{plan}`]({plan}) — rerun standalone with `arq sweep run {plan}`.\n"
            );
        }
        let _ = writeln!(out, "**Paper:** {}\n", r.paper_claim);
        let _ = writeln!(out, "| metric | measured |");
        let _ = writeln!(out, "|---|---|");
        for (k, v) in &r.rows {
            let _ = writeln!(out, "| {k} | {v} |");
        }
        for chart in &r.charts {
            let _ = writeln!(out, "\n```text\n{chart}```");
        }
    }
    out
}

/// Persists one report's raw series as JSON under `dir`.
pub fn save_json(dir: &Path, report: &ExperimentReport) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", report.id.to_lowercase()));
    let rows = Json::Arr(
        report
            .rows
            .iter()
            .map(|(k, v)| Json::Arr(vec![Json::from(k), Json::from(v)]))
            .collect(),
    );
    let doc = Json::obj([
        ("id", Json::from(&report.id)),
        ("title", Json::from(&report.title)),
        ("paper_claim", Json::from(&report.paper_claim)),
        ("rows", rows),
        ("series", report.series.clone()),
    ]);
    arq::simkern::write_atomic_str(path, &doc.to_string_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExperimentReport {
        ExperimentReport {
            id: "E0".into(),
            title: "smoke".into(),
            paper_claim: "n/a".into(),
            rows: vec![("metric".into(), "1.0".into())],
            charts: vec!["<chart>\n".into()],
            series: Json::obj([("x", Json::from(&[1.0, 2.0, 3.0][..]))]),
        }
    }

    #[test]
    fn markdown_contains_all_parts() {
        let md = render_markdown(&[report()], "# Header\n");
        assert!(md.starts_with("# Header"));
        assert!(md.contains("## E0 — smoke"));
        assert!(md.contains("arq sweep run plans/e0.toml"));
        assert!(md.contains("| metric | 1.0 |"));
        assert!(md.contains("<chart>"));
        let mut code_driven = report();
        code_driven.id = "E8".into();
        let md = render_markdown(&[code_driven], "# Header\n");
        assert!(md.contains("Code-driven (no sweep plan"));
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("arq-report-test");
        save_json(&dir, &report()).unwrap();
        let text = std::fs::read_to_string(dir.join("e0.json")).unwrap();
        let doc = arq::simkern::json::parse(&text).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_str), Some("E0"));
        let x3 = doc
            .get("series")
            .and_then(|s| s.get("x"))
            .and_then(|x| x.at(2))
            .and_then(Json::as_f64);
        assert_eq!(x3, Some(3.0));
        std::fs::remove_dir_all(&dir).ok();
    }
}
