//! One function per experiment (see `DESIGN.md` §4 for the index).
//!
//! Every function is deterministic in `(scale, seed)` and returns an
//! [`ExperimentReport`] holding the measured rows, rendered charts, and
//! the raw series for `results/*.json`.

use arq::baselines::{
    expanding_ring, FloodPolicy, InterestShortcuts, KRandomWalk, RoutingIndices, SuperPeerPolicy,
};
use arq::content::CatalogConfig;
use arq::core::topology::{apply_shortcuts, propose_shortcuts};
use arq::core::{
    evaluate, AdaptiveSlidingWindow, AssocPolicy, AssocPolicyConfig, EvalRun, HybridPolicy,
    IncrementalStream, LazySlidingWindow, LossyStream, SlidingWindow, StaticRuleset,
    TopicSlidingWindow,
};
use arq::gnutella::metrics::RunMetrics;
use arq::gnutella::sim::{Network, SimConfig, Topology};
use arq::overlay::ChurnConfig;
use arq::simkern::chart::{render, ChartOptions};
use arq::simkern::time::Duration;
use arq::simkern::TimeSeries;
use arq::trace::record::PairRecord;
use arq::trace::{SynthConfig, SynthTrace};
use rayon::prelude::*;

/// Structured result of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id (E1..E11).
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper reports for this experiment.
    pub paper_claim: String,
    /// Measured metric rows.
    pub rows: Vec<(String, String)>,
    /// Rendered ASCII charts.
    pub charts: Vec<String>,
    /// Raw series for JSON persistence.
    pub series: serde_json::Value,
}

/// Experiment sizing. `full()` matches the paper's 365 trials of
/// 10,000-pair blocks; `quick()` is a CI-sized smoke configuration.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Blocks per trace (incl. the warm-up block).
    pub blocks: usize,
    /// Pairs per block.
    pub block_size: usize,
    /// Live-simulation overlay size.
    pub live_nodes: usize,
    /// Live-simulation query count.
    pub live_queries: usize,
}

impl Scale {
    /// Paper-scale: 366 blocks → 365 trials, 10k-pair blocks.
    pub fn full() -> Self {
        Scale {
            blocks: 366,
            block_size: 10_000,
            live_nodes: 800,
            live_queries: 4_000,
        }
    }

    /// Smoke-scale for CI and development.
    pub fn quick() -> Self {
        Scale {
            blocks: 61,
            block_size: 10_000,
            live_nodes: 250,
            live_queries: 1_200,
        }
    }

    fn pairs(&self) -> usize {
        self.blocks * self.block_size
    }
}

fn paper_trace(scale: Scale, seed: u64) -> Vec<PairRecord> {
    SynthTrace::new(SynthConfig::paper_default(scale.pairs(), seed)).pairs()
}

fn chart_opts() -> ChartOptions {
    ChartOptions {
        y_range: Some((0.0, 1.0)),
        x_label: "trial (block #)".into(),
        y_label: "measure".into(),
        ..Default::default()
    }
}

fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

fn run_series(run: &EvalRun) -> serde_json::Value {
    serde_json::json!({
        "strategy": run.strategy,
        "block_size": run.block_size,
        "coverage": run.coverage.ys(),
        "success": run.success.ys(),
        "avg_coverage": run.avg_coverage,
        "avg_success": run.avg_success,
        "regenerations": run.regenerations,
    })
}

/// E1 — Static Ruleset decay (§V-A).
pub fn e1_static(scale: Scale, seed: u64) -> ExperimentReport {
    let pairs = SynthTrace::new(SynthConfig::paper_static(scale.pairs(), seed)).pairs();
    let mut s = StaticRuleset::new(10);
    let run = evaluate(&mut s, &pairs, scale.block_size);
    let succ_floor = run.success.final_drop_below(0.05);
    let cov_at_30 = run.coverage.ys().get(29).copied().unwrap_or(f64::NAN);
    let chart = render(
        "Static Ruleset: coverage (*) and success (+) over time",
        &[&run.coverage, &run.success],
        &chart_opts(),
    );
    ExperimentReport {
        id: "E1".into(),
        title: "Static Ruleset over time".into(),
        paper_claim: "avg coverage 0.18, avg success < 0.02 over 365 trials; success ~0 by \
                      trial 16 and never recovers; coverage lingers near 0.4 before decaying"
            .into(),
        rows: vec![
            ("avg coverage (paper 0.18)".into(), fmt3(run.avg_coverage)),
            ("avg success (paper <0.02)".into(), fmt3(run.avg_success)),
            (
                "success permanently <0.05 from trial (paper ~16)".into(),
                succ_floor.map_or("never".into(), |t| (t + 1).to_string()),
            ),
            ("coverage at trial 30 (paper ~0.4)".into(), fmt3(cov_at_30)),
            (
                "rule regenerations (paper 0)".into(),
                run.regenerations.to_string(),
            ),
        ],
        charts: vec![chart],
        series: run_series(&run),
    }
}

/// E2 — Sliding Window over time (Figure 1).
pub fn e2_sliding(scale: Scale, seed: u64) -> ExperimentReport {
    let pairs = paper_trace(scale, seed);
    let mut s = SlidingWindow::new(10);
    let run = evaluate(&mut s, &pairs, scale.block_size);
    let chart = render(
        "Figure 1: Sliding Window coverage (*) and success (+) over time",
        &[&run.coverage, &run.success],
        &chart_opts(),
    );
    ExperimentReport {
        id: "E2".into(),
        title: "Sliding Window over time (Fig. 1)".into(),
        paper_claim: "average coverage over 0.80, average success just under 0.79".into(),
        rows: vec![
            ("avg coverage (paper >0.80)".into(), fmt3(run.avg_coverage)),
            ("avg success (paper ≈0.79)".into(), fmt3(run.avg_success)),
            (
                "regenerations (one per trial)".into(),
                run.regenerations.to_string(),
            ),
        ],
        charts: vec![chart],
        series: run_series(&run),
    }
}

/// E3 — Sliding Window block-size sweep (Figure 2).
pub fn e3_block_sizes(scale: Scale, seed: u64) -> ExperimentReport {
    let pairs = paper_trace(scale, seed);
    let sizes = [2_500usize, 5_000, 10_000, 20_000, 50_000];
    let runs: Vec<EvalRun> = sizes
        .par_iter()
        .map(|&bs| {
            let mut s = SlidingWindow::new(10);
            evaluate(&mut s, &pairs, bs)
        })
        .collect();
    let mut rows = Vec::new();
    let mut curves: Vec<TimeSeries> = Vec::new();
    for (bs, run) in sizes.iter().zip(&runs) {
        rows.push((
            format!("avg coverage @ block {bs}"),
            format!(
                "{} (success {})",
                fmt3(run.avg_coverage),
                fmt3(run.avg_success)
            ),
        ));
        // Rescale x to pair offsets so the curves share an axis.
        let mut ts = TimeSeries::new(format!("block {bs}"));
        for (x, y) in run.coverage.iter() {
            ts.push(x * *bs as f64, y);
        }
        curves.push(ts);
    }
    let refs: Vec<&TimeSeries> = curves.iter().collect();
    let chart = render(
        "Figure 2: Sliding Window coverage over time, varying block size",
        &refs,
        &ChartOptions {
            y_range: Some((0.0, 1.0)),
            x_label: "pairs processed".into(),
            y_label: "coverage".into(),
            ..Default::default()
        },
    );
    ExperimentReport {
        id: "E3".into(),
        title: "Sliding Window block-size sweep (Fig. 2)".into(),
        paper_claim: "very similar levels of coverage when the block size is altered".into(),
        rows,
        charts: vec![chart],
        series: serde_json::json!(runs.iter().map(run_series).collect::<Vec<_>>()),
    }
}

/// E3b — support-threshold sweep (§V-B text).
pub fn e3b_thresholds(scale: Scale, seed: u64) -> ExperimentReport {
    let pairs = paper_trace(scale, seed);
    let thresholds = [2u64, 5, 10, 20, 50];
    let runs: Vec<EvalRun> = thresholds
        .par_iter()
        .map(|&t| {
            let mut s = SlidingWindow::new(t);
            evaluate(&mut s, &pairs, scale.block_size)
        })
        .collect();
    let rows = thresholds
        .iter()
        .zip(&runs)
        .map(|(t, run)| {
            (
                format!("avg coverage @ threshold {t}"),
                format!(
                    "{} (success {})",
                    fmt3(run.avg_coverage),
                    fmt3(run.avg_success)
                ),
            )
        })
        .collect();
    ExperimentReport {
        id: "E3b".into(),
        title: "Sliding Window support-threshold sweep".into(),
        paper_claim: "similar coverage when the query-reply pair threshold is altered — only a \
                      small number of pairs are needed to forward the majority of queries"
            .into(),
        rows,
        charts: vec![],
        series: serde_json::json!(runs.iter().map(run_series).collect::<Vec<_>>()),
    }
}

/// E4 — Lazy Sliding Window (Figure 3).
pub fn e4_lazy(scale: Scale, seed: u64) -> ExperimentReport {
    let pairs = paper_trace(scale, seed);
    let mut s = LazySlidingWindow::new(10, 10);
    let run = evaluate(&mut s, &pairs, scale.block_size);
    let chart = render(
        "Figure 3: Lazy Sliding Window (period 10) coverage (*) and success (+)",
        &[&run.coverage, &run.success],
        &chart_opts(),
    );
    ExperimentReport {
        id: "E4".into(),
        title: "Lazy Sliding Window over time (Fig. 3)".into(),
        paper_claim: "average coverage and success each 0.59 with rule sets used for 10 blocks"
            .into(),
        rows: vec![
            ("avg coverage (paper 0.59)".into(), fmt3(run.avg_coverage)),
            ("avg success (paper 0.59)".into(), fmt3(run.avg_success)),
            (
                "blocks per regeneration (configured 10)".into(),
                run.blocks_per_regen()
                    .map_or("n/a".into(), |b| format!("{b:.1}")),
            ),
        ],
        charts: vec![chart],
        series: run_series(&run),
    }
}

/// E5 — Adaptive Sliding Window (Figure 4).
pub fn e5_adaptive(scale: Scale, seed: u64) -> ExperimentReport {
    let pairs = paper_trace(scale, seed);
    let (run10, run50) = rayon::join(
        || {
            let mut s = AdaptiveSlidingWindow::new(10, 10, 0.7);
            evaluate(&mut s, &pairs, scale.block_size)
        },
        || {
            let mut s = AdaptiveSlidingWindow::new(10, 50, 0.7);
            evaluate(&mut s, &pairs, scale.block_size)
        },
    );
    let chart = render(
        "Figure 4: Adaptive Sliding Window (history 10) coverage (*) and success (+)",
        &[&run10.coverage, &run10.success],
        &chart_opts(),
    );
    let bpr = |r: &EvalRun| {
        r.blocks_per_regen()
            .map_or("n/a".into(), |b| format!("{b:.2}"))
    };
    ExperimentReport {
        id: "E5".into(),
        title: "Adaptive Sliding Window (Fig. 4)".into(),
        paper_claim: "history 10: avg coverage 0.78, success 0.76, regeneration every ~1.7 \
                      blocks; history 50: every ~1.9 blocks, coverage 0.79, success 0.76"
            .into(),
        rows: vec![
            (
                "avg coverage, N=10 (paper 0.78)".into(),
                fmt3(run10.avg_coverage),
            ),
            (
                "avg success, N=10 (paper 0.76)".into(),
                fmt3(run10.avg_success),
            ),
            ("blocks/regen, N=10 (paper 1.7)".into(), bpr(&run10)),
            (
                "avg coverage, N=50 (paper 0.79)".into(),
                fmt3(run50.avg_coverage),
            ),
            (
                "avg success, N=50 (paper 0.76)".into(),
                fmt3(run50.avg_success),
            ),
            ("blocks/regen, N=50 (paper 1.9)".into(), bpr(&run50)),
        ],
        charts: vec![chart],
        series: serde_json::json!([run_series(&run10), run_series(&run50)]),
    }
}

/// E6 — Incremental streaming maintainer (§VI).
pub fn e6_incremental(scale: Scale, seed: u64) -> ExperimentReport {
    let pairs = paper_trace(scale, seed);
    let mut s = IncrementalStream::new(10.0, 2.0 * scale.block_size as f64);
    let run = evaluate(&mut s, &pairs, scale.block_size);
    let chart = render(
        "Incremental stream maintainer: coverage (*) and success (+)",
        &[&run.coverage, &run.success],
        &chart_opts(),
    );
    ExperimentReport {
        id: "E6".into(),
        title: "Incremental stream rule maintenance".into(),
        paper_claim: "initial simulations consistently show coverage and success above 90%".into(),
        rows: vec![
            ("avg coverage (paper >0.90)".into(), fmt3(run.avg_coverage)),
            ("avg success (paper >0.90)".into(), fmt3(run.avg_success)),
        ],
        charts: vec![chart],
        series: run_series(&run),
    }
}

fn live_cfg(scale: Scale, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::default_with(scale.live_nodes, scale.live_queries, seed);
    cfg.topology = Topology::BarabasiAlbert { m: 3 };
    cfg.ttl = 6;
    cfg.catalog = CatalogConfig {
        topics: 20,
        files_per_topic: 200,
        ..Default::default()
    };
    cfg.churn = Some(ChurnConfig {
        mean_session: Duration::from_ticks(2_000_000),
        mean_downtime: Duration::from_ticks(600_000),
        pinned: vec![],
    });
    cfg
}

fn metrics_row(m: &RunMetrics, extra: &str) -> (String, String) {
    (
        m.policy.clone(),
        format!(
            "{:.1} msg/query ({:.1} KiB), success {:.3}, first-hit hops {}{}",
            m.messages_per_query,
            m.bytes_per_query / 1024.0,
            m.success_rate,
            m.first_hit_hops
                .as_ref()
                .map_or("n/a".into(), |h| format!("{:.2}", h.mean)),
            extra
        ),
    )
}

/// E7 — end-to-end traffic comparison across policies.
pub fn e7_traffic(scale: Scale, seed: u64) -> ExperimentReport {
    let cfg = live_cfg(scale, seed);
    // Each closure builds and runs one policy under an identical config.
    type Job = Box<dyn Fn() -> (String, RunMetrics) + Sync + Send>;
    let assoc_cfg = AssocPolicyConfig::default();
    let jobs: Vec<Job> = vec![
        Box::new({
            let cfg = cfg.clone();
            move || {
                let m = Network::new(cfg.clone(), FloodPolicy).run().metrics;
                ("".into(), m)
            }
        }),
        Box::new({
            let mut cfg = cfg.clone();
            let (policy, ring) = expanding_ring(2, 2, 6, Duration::from_ticks(1_500));
            cfg.ring = Some(ring);
            move || {
                let m = Network::new(cfg.clone(), policy.clone()).run().metrics;
                (
                    "".into(),
                    RunMetrics {
                        policy: "expanding-ring".into(),
                        ..m
                    },
                )
            }
        }),
        Box::new({
            let mut cfg = cfg.clone();
            cfg.ttl = 48; // walkers carry long TTLs
            move || {
                let m = Network::new(cfg.clone(), KRandomWalk::new(4)).run().metrics;
                ("".into(), m)
            }
        }),
        Box::new({
            let cfg = cfg.clone();
            move || {
                let m = Network::new(cfg.clone(), InterestShortcuts::new(5, 2))
                    .run()
                    .metrics;
                ("".into(), m)
            }
        }),
        Box::new({
            let cfg = cfg.clone();
            move || {
                let m = Network::new(cfg.clone(), RoutingIndices::new(3, 0.5, 2))
                    .run()
                    .metrics;
                ("".into(), m)
            }
        }),
        Box::new({
            let cfg = cfg.clone();
            let assoc_cfg = assoc_cfg.clone();
            move || {
                let (result, policy, _) =
                    Network::new(cfg.clone(), AssocPolicy::new(assoc_cfg.clone())).run_full();
                (
                    format!(", rule usage {:.2}", policy.rule_usage()),
                    result.metrics,
                )
            }
        }),
    ];
    let results: Vec<(String, RunMetrics)> = jobs.par_iter().map(|j| j()).collect();
    let rows: Vec<(String, String)> = results
        .iter()
        .map(|(extra, m)| metrics_row(m, extra))
        .collect();
    let series = serde_json::json!(results
        .iter()
        .map(|(_, m)| serde_json::to_value(m).unwrap())
        .collect::<Vec<_>>());
    ExperimentReport {
        id: "E7".into(),
        title: "Live-network traffic comparison".into(),
        paper_claim: "selective rule-based forwarding yields a dramatic reduction in flooded \
                      queries at comparable search success (motivating claim, §I/§III)"
            .into(),
        rows,
        charts: vec![],
        series,
    }
}

/// E8 — rule-generation cost (§IV-B/§V text). The precise distributions
/// live in the Criterion bench `rule_generation`; this report records
/// one-shot wall times so EXPERIMENTS.md is self-contained.
pub fn e8_rulegen_cost(scale: Scale, seed: u64) -> ExperimentReport {
    let pairs = paper_trace(
        Scale {
            blocks: 6,
            block_size: 50_000,
            ..scale
        },
        seed,
    );
    let mut rows = Vec::new();
    for bs in [10_000usize, 50_000] {
        let block = &pairs[..bs];
        let t0 = std::time::Instant::now();
        let rs = arq::assoc::mine_pairs(block, 10);
        let dt = t0.elapsed();
        rows.push((
            format!("mine {bs}-pair block"),
            format!("{:.2?} ({} rules)", dt, rs.rule_count()),
        ));
    }
    ExperimentReport {
        id: "E8".into(),
        title: "Rule-set generation cost".into(),
        paper_claim: "rule set generation required no more than a few seconds (PHP + MySQL); \
                      simulations took ~45 minutes per run"
            .into(),
        rows,
        charts: vec![],
        series: serde_json::json!(null),
    }
}

/// E9 — confidence-based pruning ablation (§VI).
pub fn e9_confidence(scale: Scale, seed: u64) -> ExperimentReport {
    let pairs = paper_trace(scale, seed);
    let confs = [0.0f64, 0.05, 0.10, 0.20, 0.40];
    let runs: Vec<(f64, EvalRun, f64)> = confs
        .par_iter()
        .map(|&c| {
            let mut s = SlidingWindow::with_confidence(10, c);
            let run = evaluate(&mut s, &pairs, scale.block_size);
            let avg_rules =
                run.rule_counts.iter().sum::<usize>() as f64 / run.rule_counts.len().max(1) as f64;
            (c, run, avg_rules)
        })
        .collect();
    let rows = runs
        .iter()
        .map(|(c, run, avg_rules)| {
            (
                format!("min confidence {c:.2}"),
                format!(
                    "{avg_rules:.0} rules avg, coverage {}, success {}",
                    fmt3(run.avg_coverage),
                    fmt3(run.avg_success)
                ),
            )
        })
        .collect();
    ExperimentReport {
        id: "E9".into(),
        title: "Confidence-based pruning ablation".into(),
        paper_claim: "confidence-based pruning could reduce the size of rule sets while \
                      retaining high coverage and success (proposed, §VI)"
            .into(),
        rows,
        charts: vec![],
        series: serde_json::json!(runs
            .iter()
            .map(|(c, run, avg)| serde_json::json!({
                "confidence": c,
                "avg_rules": avg,
                "run": run_series(run)
            }))
            .collect::<Vec<_>>()),
    }
}

/// E10 — consequent-selection ablation (§III-B.1): top-k by support vs
/// random-k, k ∈ {1, 2, 3}.
pub fn e10_topk(scale: Scale, seed: u64) -> ExperimentReport {
    let cfg = live_cfg(scale, seed);
    let variants: Vec<(usize, bool)> = vec![(1, true), (2, true), (3, true), (2, false)];
    let results: Vec<(String, RunMetrics, f64)> = variants
        .par_iter()
        .map(|&(k, top)| {
            let policy = AssocPolicy::new(AssocPolicyConfig {
                k,
                top_by_support: top,
                ..Default::default()
            });
            let (result, policy, _) = Network::new(cfg.clone(), policy).run_full();
            let label = format!("k={k}, {}", if top { "top-by-support" } else { "random-k" });
            (label, result.metrics, policy.rule_usage())
        })
        .collect();
    let rows = results
        .iter()
        .map(|(label, m, usage)| {
            (
                label.clone(),
                format!(
                    "{:.1} msg/query, success {:.3}, rule usage {usage:.2}",
                    m.messages_per_query, m.success_rate
                ),
            )
        })
        .collect();
    ExperimentReport {
        id: "E10".into(),
        title: "Consequent selection: top-k vs random-k".into(),
        paper_claim: "queries can be sent to a random subset as with k-random walks, or to the \
                      k neighbors with the highest support (§III-B.1)"
            .into(),
        rows,
        charts: vec![],
        series: serde_json::json!(results
            .iter()
            .map(|(l, m, u)| serde_json::json!({
                "variant": l,
                "metrics": serde_json::to_value(m).unwrap(),
                "rule_usage": u
            }))
            .collect::<Vec<_>>()),
    }
}

/// E11 — topology adaptation from learned rules (§VI).
pub fn e11_topology(scale: Scale, seed: u64) -> ExperimentReport {
    let mut cfg = live_cfg(scale, seed);
    cfg.churn = None; // adaptation is measured on a stable overlay
                      // Phase 1: learn associations online.
    let (_, policy, graph) =
        Network::new(cfg.clone(), AssocPolicy::new(AssocPolicyConfig::default())).run_full();
    let before_mpl = arq::overlay::algo::mean_path_length(&graph, 64);
    let proposals = propose_shortcuts(&graph, &policy);
    let mut adapted = graph.clone();
    let budget = cfg.nodes / 2;
    let added = apply_shortcuts(&mut adapted, &proposals, budget);
    let after_mpl = arq::overlay::algo::mean_path_length(&adapted, 64);
    // Phase 2: replay the same workload (same seed) on both overlays and
    // compare hop counts to first hit.
    let (base, adapt) = rayon::join(
        || {
            Network::with_graph(cfg.clone(), FloodPolicy, graph.clone())
                .run()
                .metrics
        },
        || {
            Network::with_graph(cfg.clone(), FloodPolicy, adapted.clone())
                .run()
                .metrics
        },
    );
    let hops = |m: &RunMetrics| {
        m.first_hit_hops
            .as_ref()
            .map_or("n/a".into(), |h| format!("{:.3}", h.mean))
    };
    ExperimentReport {
        id: "E11".into(),
        title: "Topology adaptation from rules".into(),
        paper_claim: "making the neighbor's forwarding target a new neighbor would save one hop \
                      on future queries (proposed, §VI)"
            .into(),
        rows: vec![
            ("shortcut proposals".into(), proposals.len().to_string()),
            (format!("edges added (budget {budget})"), added.to_string()),
            ("mean path length before".into(), format!("{before_mpl:.3}")),
            ("mean path length after".into(), format!("{after_mpl:.3}")),
            ("mean first-hit hops before".into(), hops(&base)),
            ("mean first-hit hops after".into(), hops(&adapt)),
        ],
        charts: vec![],
        series: serde_json::json!({
            "proposals": proposals.len(),
            "added": added,
            "mean_path_length": [before_mpl, after_mpl],
            "base": serde_json::to_value(&base).unwrap(),
            "adapted": serde_json::to_value(&adapt).unwrap(),
        }),
    }
}

/// E12 — topic-dimension rules (§VI "query strings during rule
/// generation"): `(src, topic)` antecedents vs plain host antecedents,
/// across support thresholds.
pub fn e12_topic_rules(scale: Scale, seed: u64) -> ExperimentReport {
    let pairs = paper_trace(scale, seed);
    let thresholds = [3u64, 10, 30];
    let runs: Vec<(u64, EvalRun, EvalRun)> = thresholds
        .par_iter()
        .map(|&t| {
            let plain = evaluate(&mut SlidingWindow::new(t), &pairs, scale.block_size);
            let topic = evaluate(&mut TopicSlidingWindow::new(t), &pairs, scale.block_size);
            (t, plain, topic)
        })
        .collect();
    let mut rows = Vec::new();
    for (t, plain, topic) in &runs {
        rows.push((
            format!("host rules @ support {t}"),
            format!(
                "coverage {}, success {}",
                fmt3(plain.avg_coverage),
                fmt3(plain.avg_success)
            ),
        ));
        rows.push((
            format!("(host, topic) rules @ support {t}"),
            format!(
                "coverage {}, success {}",
                fmt3(topic.avg_coverage),
                fmt3(topic.avg_success)
            ),
        ));
    }
    ExperimentReport {
        id: "E12".into(),
        title: "Topic-dimension rule antecedents".into(),
        paper_claim: "adding dimensions such as the query strings during rule generation … \
                      could aid in increasing the quality of the rule sets (proposed, §VI)"
            .into(),
        rows,
        charts: vec![],
        series: serde_json::json!(runs
            .iter()
            .map(|(t, plain, topic)| serde_json::json!({
                "threshold": t,
                "plain": run_series(plain),
                "topic": run_series(topic),
            }))
            .collect::<Vec<_>>()),
    }
}

/// E13 — hybrid shortcuts + rules pipeline (§VI): association rules as
/// the "last chance to avoid flooding" behind interest shortcuts.
pub fn e13_hybrid(scale: Scale, seed: u64) -> ExperimentReport {
    let cfg = live_cfg(scale, seed);
    let (flood, rest) = rayon::join(
        || Network::new(cfg.clone(), FloodPolicy).run().metrics,
        || {
            rayon::join(
                || {
                    Network::new(cfg.clone(), InterestShortcuts::new(5, 2))
                        .run()
                        .metrics
                },
                || {
                    rayon::join(
                        || {
                            let (r, p, _) = Network::new(
                                cfg.clone(),
                                AssocPolicy::new(AssocPolicyConfig::default()),
                            )
                            .run_full();
                            (r.metrics, p.rule_usage())
                        },
                        || {
                            let (r, p, _) = Network::new(
                                cfg.clone(),
                                HybridPolicy::new(5, 2, AssocPolicyConfig::default()),
                            )
                            .run_full();
                            (
                                r.metrics,
                                p.targeted_fraction(),
                                p.shortcut_decisions(),
                                p.rule_decisions(),
                            )
                        },
                    )
                },
            )
        },
    );
    let (shortcuts, ((assoc, assoc_usage), (hybrid, targeted, via_sc, via_rules))) = rest;
    let rows = vec![
        metrics_row(&flood, ""),
        metrics_row(&shortcuts, ""),
        metrics_row(&assoc, &format!(", rule usage {assoc_usage:.2}")),
        metrics_row(
            &hybrid,
            &format!(", targeted {targeted:.2} ({via_sc} shortcut / {via_rules} rule rescues)"),
        ),
    ];
    ExperimentReport {
        id: "E13".into(),
        title: "Hybrid: shortcuts backed by rules".into(),
        paper_claim: "association rules could route queries the shortcuts failed to answer — \
                      one last chance to avoid flooding (proposed, §VI)"
            .into(),
        rows,
        charts: vec![],
        series: serde_json::json!({
            "flood": serde_json::to_value(&flood).unwrap(),
            "shortcuts": serde_json::to_value(&shortcuts).unwrap(),
            "assoc": serde_json::to_value(&assoc).unwrap(),
            "hybrid": serde_json::to_value(&hybrid).unwrap(),
            "targeted_fraction": targeted,
        }),
    }
}

/// E14 — streaming maintainers compared: exponential decay vs Lossy
/// Counting (§VI stream mining, reference \[18\]).
pub fn e14_stream_maintainers(scale: Scale, seed: u64) -> ExperimentReport {
    let pairs = paper_trace(scale, seed);
    let (decay, lossy) = rayon::join(
        || {
            let mut s = IncrementalStream::new(10.0, 2.0 * scale.block_size as f64);
            evaluate(&mut s, &pairs, scale.block_size)
        },
        || {
            let mut s = LossyStream::new(10, 1.0 / (2.0 * scale.block_size as f64));
            evaluate(&mut s, &pairs, scale.block_size)
        },
    );
    ExperimentReport {
        id: "E14".into(),
        title: "Streaming maintainers: decay vs Lossy Counting".into(),
        paper_claim: "the creation of rule sets from streams has also been investigated in the \
                      data mining community [Babcock et al.] (§VI)"
            .into(),
        rows: vec![
            (
                "exponential decay (half-life 2 blocks)".into(),
                format!(
                    "coverage {}, success {}",
                    fmt3(decay.avg_coverage),
                    fmt3(decay.avg_success)
                ),
            ),
            (
                "lossy counting (eps = 1/2 block)".into(),
                format!(
                    "coverage {}, success {}",
                    fmt3(lossy.avg_coverage),
                    fmt3(lossy.avg_success)
                ),
            ),
        ],
        charts: vec![],
        series: serde_json::json!([run_series(&decay), run_series(&lossy)]),
    }
}

/// E15 — the §II "re-design the network" category: a two-tier superpeer
/// network with content indices, contrasted with flat flooding and
/// association routing on the same node population.
pub fn e15_superpeer(scale: Scale, seed: u64) -> ExperimentReport {
    let n_super = (scale.live_nodes / 20).max(4);
    let mut sp_cfg = live_cfg(scale, seed);
    sp_cfg.churn = None; // fixed membership isolates the structural effect
    sp_cfg.topology = Topology::SuperPeer {
        n_super,
        super_degree: 4,
    };
    sp_cfg.ttl = 8; // core flood + leaf hop
    let mut flat_cfg = live_cfg(scale, seed);
    flat_cfg.churn = None;
    let (flat, rest) = rayon::join(
        || Network::new(flat_cfg.clone(), FloodPolicy).run().metrics,
        || {
            rayon::join(
                || {
                    let (r, p, _) =
                        Network::new(sp_cfg.clone(), SuperPeerPolicy::new(n_super)).run_full();
                    (r.metrics, p.index_hits(), p.core_floods())
                },
                || {
                    let (r, p, _) = Network::new(
                        flat_cfg.clone(),
                        AssocPolicy::new(AssocPolicyConfig::default()),
                    )
                    .run_full();
                    (r.metrics, p.rule_usage())
                },
            )
        },
    );
    let ((sp, index_hits, core_floods), (assoc, usage)) = rest;
    ExperimentReport {
        id: "E15".into(),
        title: "Superpeer indexing vs flat overlays".into(),
        paper_claim: "superpeers reduce the number of hops required for queries but can still \
                      suffer from the effects of flooding on larger systems (§II)"
            .into(),
        rows: vec![
            metrics_row(&flat, " (flat overlay)"),
            metrics_row(
                &sp,
                &format!(" ({index_hits} index hits, {core_floods} core floods)"),
            ),
            metrics_row(&assoc, &format!(" (flat overlay, rule usage {usage:.2})")),
        ],
        charts: vec![],
        series: serde_json::json!({
            "flood": serde_json::to_value(&flat).unwrap(),
            "superpeer": serde_json::to_value(&sp).unwrap(),
            "assoc": serde_json::to_value(&assoc).unwrap(),
        }),
    }
}

/// Runs every experiment (or the named subset) at the given scale.
pub fn run_all(scale: Scale, seed: u64, only: Option<&[String]>) -> Vec<ExperimentReport> {
    type ExpFn = fn(Scale, u64) -> ExperimentReport;
    let table: Vec<(&str, ExpFn)> = vec![
        ("e1", e1_static),
        ("e2", e2_sliding),
        ("e3", e3_block_sizes),
        ("e3b", e3b_thresholds),
        ("e4", e4_lazy),
        ("e5", e5_adaptive),
        ("e6", e6_incremental),
        ("e7", e7_traffic),
        ("e8", e8_rulegen_cost),
        ("e9", e9_confidence),
        ("e10", e10_topk),
        ("e11", e11_topology),
        ("e12", e12_topic_rules),
        ("e13", e13_hybrid),
        ("e14", e14_stream_maintainers),
        ("e15", e15_superpeer),
    ];
    table
        .into_iter()
        .filter(|(id, _)| only.is_none_or(|names| names.iter().any(|n| n.eq_ignore_ascii_case(id))))
        .map(|(_, f)| f(scale, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            blocks: 6,
            block_size: 2_000,
            live_nodes: 60,
            live_queries: 150,
        }
    }

    #[test]
    fn e2_smoke() {
        let r = e2_sliding(tiny(), 3);
        assert_eq!(r.id, "E2");
        assert_eq!(r.rows.len(), 3);
        assert!(r.charts[0].contains("Figure 1"));
    }

    #[test]
    fn run_all_filter() {
        let only = vec!["e8".to_string()];
        let reports = run_all(tiny(), 3, Some(&only));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].id, "E8");
    }
}
