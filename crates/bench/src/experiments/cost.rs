//! Wall-clock cost measurement (E8).

use super::{ExperimentReport, Scale};
use arq::simkern::Json;
use arq::trace::{SynthConfig, SynthTrace};

/// E8 — rule-generation cost (§IV-B/§V text). The precise distributions
/// live in the Criterion bench `rule_generation`; this report records
/// one-shot wall times so EXPERIMENTS.md is self-contained.
///
/// Wall times are the one nondeterministic measurement in the harness,
/// so setting `ARQ_DETERMINISTIC` drops them from the rows (leaving the
/// deterministic rule counts) — CI uses this to diff whole artifact
/// trees across worker counts. The JSON series carries only the
/// deterministic counts either way.
pub fn e8_rulegen_cost(scale: Scale, seed: u64) -> ExperimentReport {
    let pairs = SynthTrace::new(SynthConfig::paper_default(
        Scale {
            blocks: 6,
            block_size: 50_000,
            ..scale
        }
        .pairs(),
        seed,
    ))
    .pairs();
    let deterministic = std::env::var_os("ARQ_DETERMINISTIC").is_some();
    let mut rows = Vec::new();
    let mut counts = Vec::new();
    for bs in [10_000usize, 50_000] {
        let block = &pairs[..bs];
        let t0 = std::time::Instant::now();
        let rs = arq::assoc::mine_pairs(block, 10);
        let dt = t0.elapsed();
        rows.push((
            format!("mine {bs}-pair block"),
            if deterministic {
                format!("{} rules", rs.rule_count())
            } else {
                format!("{:.2?} ({} rules)", dt, rs.rule_count())
            },
        ));
        counts.push((bs, rs.rule_count()));
    }
    ExperimentReport {
        id: "E8".into(),
        title: "Rule-set generation cost".into(),
        paper_claim: "rule set generation required no more than a few seconds (PHP + MySQL); \
                      simulations took ~45 minutes per run"
            .into(),
        rows,
        charts: vec![],
        series: Json::Arr(
            counts
                .into_iter()
                .map(|(bs, n)| {
                    Json::obj([("block_size", Json::from(bs)), ("rules", Json::from(n))])
                })
                .collect(),
        ),
    }
}
