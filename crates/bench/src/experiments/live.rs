//! Live-network experiments: forwarding policies inside the protocol
//! simulator (E7, E10, E11, E13, E15, E16, E17).
//!
//! Each experiment is a thin wrapper over its checked-in sweep plan
//! (`plans/eN.toml`): rescale to `(scale, seed)`, expand, execute,
//! render the historical rows. Policy-specific counters (rule usage,
//! index hits, …) arrive through the artifact's `stats`. The one
//! exception is E11, which stays code-driven: its phase-2 replays run
//! over prebuilt (rule-adapted) overlay graphs, which no plan key can
//! express, and its phase 1 downcasts the concrete policy to read the
//! learned rules.

use super::{artifacts_json, by_params, metrics_row, plan_at, run_plan, ExperimentReport, Scale};
use arq::content::CatalogConfig;
use arq::core::engine::{self, RunSpec};
use arq::core::topology::{apply_shortcuts, propose_shortcuts};
use arq::core::AssocPolicy;
use arq::gnutella::sim::{SimConfig, Topology};
use arq::overlay::ChurnConfig;
use arq::simkern::time::Duration;
use arq::simkern::Json;
use std::sync::Arc;

/// E7 — end-to-end traffic comparison across policies.
pub fn e7_traffic(scale: Scale, seed: u64) -> ExperimentReport {
    let plan = plan_at(include_str!("../../../../plans/e7.toml"), "e7", scale, seed);
    let (_, artifacts) = run_plan(&plan);
    let rows = artifacts
        .iter()
        .map(|a| {
            let extra = a
                .stat("rule_usage")
                .map_or(String::new(), |u| format!(", rule usage {u:.2}"));
            metrics_row(a.metrics().expect("live spec"), &extra)
        })
        .collect();
    ExperimentReport {
        id: "E7".into(),
        title: "Live-network traffic comparison".into(),
        paper_claim: "selective rule-based forwarding yields a dramatic reduction in flooded \
                      queries at comparable search success (motivating claim, §I/§III)"
            .into(),
        rows,
        charts: vec![],
        series: artifacts_json(&artifacts),
    }
}

/// E10 — consequent-selection ablation (§III-B.1): top-k by support vs
/// random-k, k ∈ {1, 2, 3}.
pub fn e10_topk(scale: Scale, seed: u64) -> ExperimentReport {
    let plan = plan_at(
        include_str!("../../../../plans/e10.toml"),
        "e10",
        scale,
        seed,
    );
    let (_, artifacts) = run_plan(&plan);
    let variants: Vec<(usize, bool)> = vec![(1, true), (2, true), (3, true), (2, false)];
    let label = |&(k, top): &(usize, bool)| {
        format!("k={k}, {}", if top { "top-by-support" } else { "random-k" })
    };
    let rows = variants
        .iter()
        .zip(&artifacts)
        .map(|(v, a)| {
            let m = a.metrics().expect("live spec");
            (
                label(v),
                format!(
                    "{:.1} msg/query, success {:.3}, rule usage {:.2}",
                    m.messages_per_query,
                    m.success_rate,
                    a.stat("rule_usage").unwrap_or(0.0)
                ),
            )
        })
        .collect();
    let series = Json::Arr(
        variants
            .iter()
            .zip(&artifacts)
            .map(|(v, a)| {
                Json::obj([
                    ("variant", Json::from(label(v))),
                    ("artifact", arq::simkern::ToJson::to_json(a)),
                ])
            })
            .collect(),
    );
    ExperimentReport {
        id: "E10".into(),
        title: "Consequent selection: top-k vs random-k".into(),
        paper_claim: "queries can be sent to a random subset as with k-random walks, or to the \
                      k neighbors with the highest support (§III-B.1)"
            .into(),
        rows,
        charts: vec![],
        series,
    }
}

/// The default live-simulation config E11 builds by hand — the same
/// world the live plan bases describe (ttl 6, 20×200 catalog, churn);
/// only the code-driven experiment still needs it as a value.
fn live_cfg(scale: Scale, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::default_with(scale.live_nodes, scale.live_queries, seed);
    cfg.topology = Topology::BarabasiAlbert { m: 3 };
    cfg.ttl = 6;
    cfg.catalog = CatalogConfig {
        topics: 20,
        files_per_topic: 200,
        ..Default::default()
    };
    cfg.churn = Some(ChurnConfig {
        mean_session: Duration::from_ticks(2_000_000),
        mean_downtime: Duration::from_ticks(600_000),
        pinned: vec![],
    });
    cfg
}

/// E11 — topology adaptation from learned rules (§VI). Phase 1 learns
/// associations online ([`engine::run_live`] returns the concrete policy
/// for the rule readout); phase 2 replays the same workload on the
/// original and rewired overlays through the executor.
pub fn e11_topology(scale: Scale, seed: u64) -> ExperimentReport {
    let mut cfg = live_cfg(scale, seed);
    cfg.churn = None; // adaptation is measured on a stable overlay
    let (_, _, policy, graph) =
        engine::run_live(cfg.clone(), "assoc", None).expect("assoc is registered");
    let assoc = policy
        .as_any()
        .and_then(|p| p.downcast_ref::<AssocPolicy>())
        .expect("`assoc` constructs an AssocPolicy");
    let before_mpl = arq::overlay::algo::mean_path_length(&graph, 64);
    let proposals = propose_shortcuts(&graph, assoc);
    let mut adapted = graph.clone();
    let budget = cfg.nodes / 2;
    let added = apply_shortcuts(&mut adapted, &proposals, budget);
    let after_mpl = arq::overlay::algo::mean_path_length(&adapted, 64);
    // Phase 2: same workload (same seed) on both overlays; the digest in
    // each artifact distinguishes them by edge count.
    let specs = vec![
        RunSpec::LiveSim {
            cfg: cfg.clone(),
            policy: "flood".into(),
            graph: Some(Arc::new(graph)),
            obs: None,
        },
        RunSpec::LiveSim {
            cfg,
            policy: "flood".into(),
            graph: Some(Arc::new(adapted)),
            obs: None,
        },
    ];
    let artifacts = engine::execute(&specs).expect("flood is registered");
    let hops = |a: &arq::core::RunArtifact| {
        a.metrics()
            .expect("live spec")
            .first_hit_hops
            .as_ref()
            .map_or("n/a".into(), |h| format!("{:.3}", h.mean))
    };
    ExperimentReport {
        id: "E11".into(),
        title: "Topology adaptation from rules".into(),
        paper_claim: "making the neighbor's forwarding target a new neighbor would save one hop \
                      on future queries (proposed, §VI)"
            .into(),
        rows: vec![
            ("shortcut proposals".into(), proposals.len().to_string()),
            (format!("edges added (budget {budget})"), added.to_string()),
            ("mean path length before".into(), format!("{before_mpl:.3}")),
            ("mean path length after".into(), format!("{after_mpl:.3}")),
            ("mean first-hit hops before".into(), hops(&artifacts[0])),
            ("mean first-hit hops after".into(), hops(&artifacts[1])),
        ],
        charts: vec![],
        series: Json::obj([
            ("proposals", Json::from(proposals.len())),
            ("added", Json::from(added)),
            ("mean_path_length", Json::from(&[before_mpl, after_mpl][..])),
            ("replays", artifacts_json(&artifacts)),
        ]),
    }
}

/// E13 — hybrid shortcuts + rules pipeline (§VI): association rules as
/// the "last chance to avoid flooding" behind interest shortcuts.
pub fn e13_hybrid(scale: Scale, seed: u64) -> ExperimentReport {
    let plan = plan_at(
        include_str!("../../../../plans/e13.toml"),
        "e13",
        scale,
        seed,
    );
    let (_, artifacts) = run_plan(&plan);
    let rows = artifacts
        .iter()
        .map(|a| {
            let extra = if let Some(usage) = a.stat("rule_usage") {
                format!(", rule usage {usage:.2}")
            } else if let Some(targeted) = a.stat("targeted_fraction") {
                format!(
                    ", targeted {targeted:.2} ({:.0} shortcut / {:.0} rule rescues)",
                    a.stat("shortcut_decisions").unwrap_or(0.0),
                    a.stat("rule_decisions").unwrap_or(0.0)
                )
            } else {
                String::new()
            };
            metrics_row(a.metrics().expect("live spec"), &extra)
        })
        .collect();
    ExperimentReport {
        id: "E13".into(),
        title: "Hybrid: shortcuts backed by rules".into(),
        paper_claim: "association rules could route queries the shortcuts failed to answer — \
                      one last chance to avoid flooding (proposed, §VI)"
            .into(),
        rows,
        charts: vec![],
        series: artifacts_json(&artifacts),
    }
}

/// E16 — failure degradation sweep: how recall and routing quality decay
/// as the fault layer drops a rising fraction of messages, for flooding,
/// plain association routing, and the failure-adaptive variant. Every
/// run keeps the same bounded-retry lifecycle so the policies are
/// compared on equal recovery budgets; the zero-loss rows are asserted
/// byte-identical to baselines that have no fault layer at all. The
/// grid expands faults-major, so the historical policy-major rows are
/// recovered by param lookup.
pub fn e16_degradation(scale: Scale, seed: u64) -> ExperimentReport {
    const POLICIES: [&str; 3] = ["flood", "assoc", "assoc-adaptive"];
    const LOSSES: [f64; 4] = [0.0, 0.05, 0.15, 0.30];
    let plan = plan_at(
        include_str!("../../../../plans/e16.toml"),
        "e16",
        scale,
        seed,
    );
    let (jobs, artifacts) = run_plan(&plan);
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for p in POLICIES {
        // Baseline: the fault layer absent entirely (`faults = "none"`).
        // The loss=0 row must reproduce it byte-for-byte (asserted
        // below), which pins the fault layer's zero-cost-when-idle
        // contract in every run.
        let baseline = by_params(&jobs, &artifacts, &[("policy", p), ("faults", "none")]);
        let zero = by_params(
            &jobs,
            &artifacts,
            &[("policy", p), ("faults", "faults(loss=0)")],
        );
        let base_json = arq::simkern::ToJson::to_json(baseline.metrics().expect("live spec"));
        let zero_json = arq::simkern::ToJson::to_json(zero.metrics().expect("live spec"));
        assert_eq!(
            base_json.to_string(),
            zero_json.to_string(),
            "zero-loss run diverged from the no-fault baseline for {p}"
        );
        for loss in LOSSES {
            let a = by_params(
                &jobs,
                &artifacts,
                &[("policy", p), ("faults", &format!("faults(loss={loss})"))],
            );
            let m = a.metrics().expect("live spec");
            let recall = if m.queries == 0 {
                0.0
            } else {
                m.answered as f64 / m.queries as f64
            };
            let alpha = a
                .stat("rule_usage")
                .map_or(String::new(), |u| format!(", α {u:.2}"));
            rows.push((
                format!("{p} loss={loss:.2}"),
                format!(
                    "recall {recall:.3}, ρ {:.3}{alpha}, {} retried / {} expired / {} lost",
                    m.success_rate, m.retried, m.expired, m.lost_messages
                ),
            ));
            series.push(Json::obj([
                ("policy", Json::from(p)),
                ("loss", Json::from(loss)),
                ("artifact", arq::simkern::ToJson::to_json(a)),
            ]));
        }
    }
    ExperimentReport {
        id: "E16".into(),
        title: "Failure degradation sweep".into(),
        paper_claim: "rule quality decays as the network changes — unreliable peers and \
                      silent drops, not just topology change, erode coverage α and success ρ \
                      (motivating §I; churn discussion §V)"
            .into(),
        rows,
        charts: vec![],
        series: Json::Arr(series),
    }
}

/// E17 — offered-load sweep under byte-accurate links: flood vs plain
/// association routing vs the failure-adaptive variant, all pushed
/// through congested asymmetric links (bounded buffers, seeded loss,
/// free-rider uplinks) at rising query rates. Reports query-latency
/// percentiles and per-node byte budgets from the obs registry
/// histograms; the zero-capacity rows are asserted byte-identical to
/// baselines that have no link layer at all. The plan zips interval,
/// link plan, and obs on one axis; rows are recovered by param lookup.
pub fn e17_offered_load(scale: Scale, seed: u64) -> ExperimentReport {
    const POLICIES: [&str; 3] = ["flood", "assoc", "assoc-adaptive"];
    /// Mean inter-query intervals in ticks, highest load last. The
    /// default workload spaces queries 2000 ticks apart; 4× and 16×
    /// that rate drive the bounded per-node uplinks into queueing and
    /// then congestive drops.
    const INTERVALS: [u64; 3] = [2_000, 500, 125];
    const CONGESTED: &str =
        "links(up=8,down=32,upbuf=2048,downbuf=8192,loss=0.02,jitter=20,riders=0.2,riderup=2)";
    let plan = plan_at(
        include_str!("../../../../plans/e17.toml"),
        "e17",
        scale,
        seed,
    );
    let (jobs, artifacts) = run_plan(&plan);
    let quantile = |a: &engine::RunArtifact, name: &str, p: f64| {
        a.obs
            .as_ref()
            .and_then(|o| o.registry.histogram_value(name))
            .and_then(|h| h.quantile(p))
            .unwrap_or(0.0)
    };
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for p in POLICIES {
        // Baseline: no link layer at all (`links = "none"`), then the
        // same run under an all-zero (infinite-capacity) plan. The pair
        // must be byte-identical (asserted below), pinning the link
        // layer's zero-cost-when-idle contract inside every run.
        let baseline = by_params(&jobs, &artifacts, &[("policy", p), ("links", "none")]);
        let noop = by_params(&jobs, &artifacts, &[("policy", p), ("links", "links")]);
        let base_json = arq::simkern::ToJson::to_json(baseline.metrics().expect("live spec"));
        let noop_json = arq::simkern::ToJson::to_json(noop.metrics().expect("live spec"));
        assert_eq!(
            base_json.to_string(),
            noop_json.to_string(),
            "zero-capacity link run diverged from the no-link baseline for {p}"
        );
        for interval in INTERVALS {
            let a = by_params(
                &jobs,
                &artifacts,
                &[
                    ("policy", p),
                    ("interval", &interval.to_string()),
                    ("links", CONGESTED),
                ],
            );
            let m = a.metrics().expect("live spec");
            let (p50, p95, p99) = (
                quantile(a, "query_latency", 0.50),
                quantile(a, "query_latency", 0.95),
                quantile(a, "query_latency", 0.99),
            );
            let (up95, down95) = (
                quantile(a, "node_up_bytes", 0.95),
                quantile(a, "node_down_bytes", 0.95),
            );
            rows.push((
                format!("{p} interval={interval}"),
                format!(
                    "latency p50/p95/p99 {p50:.0}/{p95:.0}/{p99:.0} ticks, success {:.3}, \
                     {} lost / {} buffer-dropped, node bytes p95 up {up95:.0} / down {down95:.0}",
                    m.success_rate, m.lost_messages, m.buffer_dropped
                ),
            ));
            series.push(Json::obj([
                ("policy", Json::from(p)),
                ("interval", Json::from(interval)),
                (
                    "latency_ticks",
                    Json::obj([
                        ("p50", Json::from(p50)),
                        ("p95", Json::from(p95)),
                        ("p99", Json::from(p99)),
                    ]),
                ),
                (
                    "node_bytes_p95",
                    Json::obj([("up", Json::from(up95)), ("down", Json::from(down95))]),
                ),
                ("artifact", arq::simkern::ToJson::to_json(a)),
            ]));
        }
    }
    ExperimentReport {
        id: "E17".into(),
        title: "Offered-load sweep under byte-accurate links".into(),
        paper_claim: "selective forwarding should matter *more* when bandwidth is scarce: \
                      flooding's traffic advantage inverts under congestion, where bounded \
                      per-node capacity turns extra messages into queueing delay and loss \
                      (motivating claim §I, free-rider discussion §II)"
            .into(),
        rows,
        charts: vec![],
        series: Json::Arr(series),
    }
}

/// E18 — routing-science sweep (§VI): top-k consequent fan-out,
/// minimum-confidence pruning, live topology adaptation, and the
/// community/super-peer hybrid, all on one shared two-tier overlay so
/// the policies differ only in how they route. The zipped axis flips
/// the world from calm (no faults, slow churn) to stressed (10% loss,
/// 4× faster churn); the adapt axis turns the tumbling
/// topology-adaptation schedule on. Flood's rows are asserted
/// byte-identical with adaptation on and off — a policy that proposes
/// no shortcuts must not perturb the run.
pub fn e18_routing(scale: Scale, seed: u64) -> ExperimentReport {
    const POLICIES: [&str; 7] = [
        "flood",
        "assoc(k=1,minconf=0)",
        "assoc(k=4,minconf=0)",
        "assoc(k=4,minconf=0.6)",
        "assoc-adaptive(k=4,minconf=0.6)",
        "hybrid(cap=5,k=4,minconf=0.6)",
        "community(n=16,k=4,minconf=0.6)",
    ];
    const WORLDS: [(&str, &str); 2] = [("calm", "none"), ("stressed", "faults(loss=0.1)")];
    const ADAPTS: [(&str, &str); 2] = [
        ("static", "none"),
        ("adaptive", "adapt(every=50000,budget=8,degree=2)"),
    ];
    let plan = plan_at(
        include_str!("../../../../plans/e18.toml"),
        "e18",
        scale,
        seed,
    );
    let (jobs, artifacts) = run_plan(&plan);
    let counter = |a: &engine::RunArtifact, name: &str| {
        a.obs
            .as_ref()
            .and_then(|o| o.registry.counter_value(name))
            .unwrap_or(0)
    };
    // A non-proposing policy under an active adapt plan is a no-op: the
    // flood rows must reproduce their static twins byte-for-byte.
    for (_, faults) in WORLDS {
        let stat = by_params(
            &jobs,
            &artifacts,
            &[("policy", "flood"), ("faults", faults), ("adapt", "none")],
        );
        let live = by_params(
            &jobs,
            &artifacts,
            &[
                ("policy", "flood"),
                ("faults", faults),
                ("adapt", ADAPTS[1].1),
            ],
        );
        let stat_json = arq::simkern::ToJson::to_json(stat.metrics().expect("live spec"));
        let live_json = arq::simkern::ToJson::to_json(live.metrics().expect("live spec"));
        assert_eq!(
            stat_json.to_string(),
            live_json.to_string(),
            "adaptation over flood (no proposals) perturbed the run under faults={faults}"
        );
    }
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for p in POLICIES {
        for (world, faults) in WORLDS {
            for (mode, adapt) in ADAPTS {
                let a = by_params(
                    &jobs,
                    &artifacts,
                    &[("policy", p), ("faults", faults), ("adapt", adapt)],
                );
                let m = a.metrics().expect("live spec");
                let pruned = a
                    .stat("pruned_consequents")
                    .map_or(String::new(), |n| format!(", {n:.0} pruned"));
                let usage = a
                    .stat("rule_usage")
                    .map_or(String::new(), |u| format!(", rule usage {u:.2}"));
                let (added, retired, rejected) = (
                    counter(a, "shortcut_added"),
                    counter(a, "shortcut_retired"),
                    counter(a, "shortcut_rejected"),
                );
                let shortcuts = if mode == "adaptive" {
                    format!(", shortcuts +{added}/-{retired} ({rejected} rejected)")
                } else {
                    String::new()
                };
                rows.push((
                    format!("{p} {world} {mode}"),
                    format!(
                        "{:.1} msg/query, success {:.3}{usage}{pruned}{shortcuts}",
                        m.messages_per_query, m.success_rate
                    ),
                ));
                series.push(Json::obj([
                    ("policy", Json::from(p)),
                    ("world", Json::from(world)),
                    ("adapt", Json::from(mode)),
                    ("shortcut_added", Json::from(added)),
                    ("shortcut_retired", Json::from(retired)),
                    ("shortcut_rejected", Json::from(rejected)),
                    ("artifact", arq::simkern::ToJson::to_json(a)),
                ]));
            }
        }
    }
    ExperimentReport {
        id: "E18".into(),
        title: "Routing science: top-k, confidence pruning, adaptation, community".into(),
        paper_claim: "queries can be sent to the k neighbors with the highest support, pruned \
                      by minimum confidence (§III-B.1), and making a forwarding target a new \
                      neighbor would save one hop on future queries (§VI)"
            .into(),
        rows,
        charts: vec![],
        series: Json::Arr(series),
    }
}

/// E15 — the §II "re-design the network" category: a two-tier superpeer
/// network with content indices, contrasted with flat flooding and
/// association routing on the same node population. The paper-scale
/// superpeer count (nodes/20 = 40) is baked into the checked-in job;
/// the wrapper rewrites it at other scales.
pub fn e15_superpeer(scale: Scale, seed: u64) -> ExperimentReport {
    let n_super = (scale.live_nodes / 20).max(4);
    let mut plan = plan_at(
        include_str!("../../../../plans/e15.toml"),
        "e15",
        scale,
        seed,
    );
    plan.set_job(1, "policy", format!("superpeer(n={n_super})"))
        .expect("e15 job #1 exists");
    plan.set_job(1, "topology", format!("superpeer(n={n_super},degree=4)"))
        .expect("e15 job #1 exists");
    let (_, artifacts) = run_plan(&plan);
    let extras = [
        " (flat overlay)".to_string(),
        format!(
            " ({:.0} index hits, {:.0} core floods)",
            artifacts[1].stat("index_hits").unwrap_or(0.0),
            artifacts[1].stat("core_floods").unwrap_or(0.0)
        ),
        format!(
            " (flat overlay, rule usage {:.2})",
            artifacts[2].stat("rule_usage").unwrap_or(0.0)
        ),
    ];
    let rows = artifacts
        .iter()
        .zip(&extras)
        .map(|(a, extra)| metrics_row(a.metrics().expect("live spec"), extra))
        .collect();
    ExperimentReport {
        id: "E15".into(),
        title: "Superpeer indexing vs flat overlays".into(),
        paper_claim: "superpeers reduce the number of hops required for queries but can still \
                      suffer from the effects of flooding on larger systems (§II)"
            .into(),
        rows,
        charts: vec![],
        series: artifacts_json(&artifacts),
    }
}
