//! One function per experiment (see `DESIGN.md` §4 for the index).
//!
//! Every function is deterministic in `(scale, seed)` and returns an
//! [`ExperimentReport`] holding the measured rows, rendered charts, and
//! the raw series for `results/*.json`.
//!
//! No experiment constructs a `Strategy` or `ForwardingPolicy` — or
//! even a spec list — directly: each one is a thin wrapper over a
//! checked-in sweep plan (`plans/eN.toml`, compiled in via
//! `include_str!`), rescaled to `(scale, seed)` through
//! [`SweepPlan::set_base`], expanded by [`sweep::expand`], and fanned
//! through the engine's deterministic parallel executor
//! ([`arq::core::engine::execute`]). `arq sweep run plans/eN.toml`, the
//! harness, and the tests therefore share one construction path, and
//! the persisted artifact JSON is byte-identical at any worker count
//! (`ARQ_THREADS`). Only E8 (wall-clock cost) and E11 (prebuilt
//! adapted overlays) remain code-driven.
//!
//! The functions are grouped by the world they run in:
//!
//! * [`trace`] — trace-driven evaluation (E1–E6, E9, E12, E14);
//! * [`live`] — live-network simulation (E7, E10, E11, E13, E15, E16,
//!   E17, E18);
//! * [`cost`] — wall-clock cost measurement (E8).

mod cost;
mod live;
mod trace;

pub use cost::e8_rulegen_cost;
pub use live::{
    e10_topk, e11_topology, e13_hybrid, e15_superpeer, e16_degradation, e17_offered_load,
    e18_routing, e7_traffic,
};
pub use trace::{
    e12_topic_rules, e14_stream_maintainers, e1_static, e2_sliding, e3_block_sizes, e3b_thresholds,
    e4_lazy, e5_adaptive, e6_incremental, e9_confidence,
};

use arq::core::engine::{self, RunArtifact, RunSpec};
use arq::core::sweep::{self, PlanKind, SweepJob, SweepPlan};
use arq::gnutella::metrics::RunMetrics;
use arq::simkern::chart::ChartOptions;
use arq::simkern::{Json, ToJson};

/// Structured result of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id (E1..E15).
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper reports for this experiment.
    pub paper_claim: String,
    /// Measured metric rows.
    pub rows: Vec<(String, String)>,
    /// Rendered ASCII charts.
    pub charts: Vec<String>,
    /// Raw series for JSON persistence — usually the engine's
    /// [`RunArtifact`]s, so `results/*.json` carries full provenance
    /// (seed, spec description, config digest) alongside the numbers.
    pub series: Json,
}

/// Experiment sizing. `full()` matches the paper's 365 trials of
/// 10,000-pair blocks; `quick()` is a CI-sized smoke configuration.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Blocks per trace (incl. the warm-up block).
    pub blocks: usize,
    /// Pairs per block.
    pub block_size: usize,
    /// Live-simulation overlay size.
    pub live_nodes: usize,
    /// Live-simulation query count.
    pub live_queries: usize,
}

impl Scale {
    /// Paper-scale: 366 blocks → 365 trials, 10k-pair blocks.
    pub fn full() -> Self {
        Scale {
            blocks: 366,
            block_size: 10_000,
            live_nodes: 800,
            live_queries: 4_000,
        }
    }

    /// Smoke-scale for CI and development.
    pub fn quick() -> Self {
        Scale {
            blocks: 61,
            block_size: 10_000,
            live_nodes: 250,
            live_queries: 1_200,
        }
    }

    fn pairs(&self) -> usize {
        self.blocks * self.block_size
    }
}

/// Loads a checked-in plan (`plans/*.toml`, compiled in via
/// `include_str!`) and rescales it to `(scale, seed)`. Harness scaling
/// never edits the plan files — it overrides base settings through the
/// same API `arq sweep` users have.
fn plan_at(text: &str, name: &str, scale: Scale, seed: u64) -> SweepPlan {
    let mut plan =
        SweepPlan::parse(text, &format!("plans/{name}.toml")).expect("checked-in plan parses");
    plan.seed = seed;
    plan.set_base("seed", seed).expect("seed is a plan key");
    match plan.kind {
        PlanKind::TraceEval => {
            plan.set_base("pairs", scale.pairs())
                .expect("pairs is a plan key");
            plan.set_base("block", scale.block_size)
                .expect("block is a plan key");
        }
        PlanKind::LiveSim => {
            plan.set_base("nodes", scale.live_nodes)
                .expect("nodes is a plan key");
            plan.set_base("queries", scale.live_queries)
                .expect("queries is a plan key");
        }
    }
    plan
}

/// Expands a scaled plan and fans its jobs across the engine's
/// executor — the single execution path behind every plan-driven
/// experiment. Checked-in plans only use registered names, so failures
/// are programming errors here.
fn run_plan(plan: &SweepPlan) -> (Vec<SweepJob>, Vec<RunArtifact>) {
    let jobs = sweep::expand(plan).expect("checked-in plan expands");
    let specs: Vec<RunSpec> = jobs.iter().map(|j| j.spec.clone()).collect();
    let artifacts = engine::execute(&specs).expect("experiment specs use registered names");
    (jobs, artifacts)
}

/// The artifact of the job assigning exactly these rendered param
/// values — how wrappers keep their historical row order while the grid
/// expands in sorted-axis order instead.
fn by_params<'a>(
    jobs: &[SweepJob],
    artifacts: &'a [RunArtifact],
    want: &[(&str, &str)],
) -> &'a RunArtifact {
    let i = jobs
        .iter()
        .position(|j| want.iter().all(|(k, v)| j.param(k).as_deref() == Some(*v)))
        .unwrap_or_else(|| panic!("no job assigns {want:?}"));
    &artifacts[i]
}

/// All artifacts as a JSON array — the standard `series` payload.
fn artifacts_json(artifacts: &[RunArtifact]) -> Json {
    Json::Arr(artifacts.iter().map(ToJson::to_json).collect())
}

fn chart_opts() -> ChartOptions {
    ChartOptions {
        y_range: Some((0.0, 1.0)),
        x_label: "trial (block #)".into(),
        y_label: "measure".into(),
        ..Default::default()
    }
}

fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

fn metrics_row(m: &RunMetrics, extra: &str) -> (String, String) {
    // Retry/fault lifecycle counters append only when something actually
    // happened, so fault-free experiments keep their historical rows
    // (and `results/` bytes) unchanged.
    let lifecycle = if m.retried + m.expired + m.duplicate_hits + m.lost_messages > 0 {
        format!(
            ", {} retried / {} expired / {} dup / {} lost",
            m.retried, m.expired, m.duplicate_hits, m.lost_messages
        )
    } else {
        String::new()
    };
    (
        m.policy.clone(),
        format!(
            "{:.1} msg/query ({:.1} KiB), success {:.3}, first-hit hops {}{}{}",
            m.messages_per_query,
            m.bytes_per_query / 1024.0,
            m.success_rate,
            m.first_hit_hops
                .as_ref()
                .map_or("n/a".into(), |h| format!("{:.2}", h.mean)),
            lifecycle,
            extra
        ),
    )
}

/// Runs every experiment (or the named subset) at the given scale.
pub fn run_all(scale: Scale, seed: u64, only: Option<&[String]>) -> Vec<ExperimentReport> {
    type ExpFn = fn(Scale, u64) -> ExperimentReport;
    let table: Vec<(&str, ExpFn)> = vec![
        ("e1", e1_static),
        ("e2", e2_sliding),
        ("e3", e3_block_sizes),
        ("e3b", e3b_thresholds),
        ("e4", e4_lazy),
        ("e5", e5_adaptive),
        ("e6", e6_incremental),
        ("e7", e7_traffic),
        ("e8", e8_rulegen_cost),
        ("e9", e9_confidence),
        ("e10", e10_topk),
        ("e11", e11_topology),
        ("e12", e12_topic_rules),
        ("e13", e13_hybrid),
        ("e14", e14_stream_maintainers),
        ("e15", e15_superpeer),
        ("e16", e16_degradation),
        ("e17", e17_offered_load),
        ("e18", e18_routing),
    ];
    table
        .into_iter()
        .filter(|(id, _)| only.is_none_or(|names| names.iter().any(|n| n.eq_ignore_ascii_case(id))))
        .map(|(_, f)| f(scale, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            blocks: 6,
            block_size: 2_000,
            live_nodes: 60,
            live_queries: 150,
        }
    }

    #[test]
    fn e2_smoke() {
        let r = e2_sliding(tiny(), 3);
        assert_eq!(r.id, "E2");
        assert_eq!(r.rows.len(), 3);
        assert!(r.charts[0].contains("Figure 1"));
    }

    #[test]
    fn run_all_filter() {
        let only = vec!["e8".to_string()];
        let reports = run_all(tiny(), 3, Some(&only));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].id, "E8");
    }

    // 3 policies × 3 load levels; the zero-capacity-equals-baseline
    // assertion inside the experiment runs as part of this smoke test.
    #[test]
    fn e17_smoke() {
        let r = e17_offered_load(tiny(), 3);
        assert_eq!(r.id, "E17");
        assert_eq!(r.rows.len(), 9);
        assert!(r.rows[0].0.starts_with("flood interval=2000"));
        assert!(r.rows[0].1.contains("latency p50"));
        assert!(r.rows[0].1.contains("node bytes p95"));
        // The congested sweep must surface real link pressure somewhere.
        assert!(
            r.rows.iter().any(|(_, v)| !v.contains(" 0 buffer-dropped")),
            "no congestive drops anywhere in the sweep: {:?}",
            r.rows
        );
    }

    // 3 policies × 4 loss rates; the zero-loss-equals-baseline assertion
    // inside the experiment runs as part of this smoke test.
    #[test]
    fn e16_smoke() {
        let r = e16_degradation(tiny(), 3);
        assert_eq!(r.id, "E16");
        assert_eq!(r.rows.len(), 12);
        assert!(r.rows[0].0.starts_with("flood loss=0.00"));
        assert!(r.rows[0].1.contains("recall"));
    }

    // 7 policies × 2 worlds × 2 adapt modes; the flood-is-unperturbed
    // assertion inside the experiment runs as part of this smoke test.
    #[test]
    fn e18_smoke() {
        let r = e18_routing(tiny(), 3);
        assert_eq!(r.id, "E18");
        assert_eq!(r.rows.len(), 28);
        assert!(r.rows[0].0.starts_with("flood calm static"));
        assert!(r.rows[1].0.starts_with("flood calm adaptive"));
        assert!(r.rows[1].1.contains("shortcuts +"), "{:?}", r.rows[1]);
        // The confidence-pruned configs must actually report pruning
        // somewhere once the learners warm up.
        assert!(
            r.rows
                .iter()
                .any(|(k, v)| k.contains("minconf=0.6") && v.contains("pruned")),
            "no pruned_consequents stat surfaced: {:?}",
            r.rows
        );
    }

    #[test]
    fn series_carry_provenance() {
        let r = e2_sliding(tiny(), 3);
        let artifact = r.series.at(0).expect("one artifact");
        assert_eq!(
            artifact.get("label").and_then(Json::as_str),
            Some("sliding(s=10)")
        );
        assert!(artifact.get("digest").is_some());
        assert!(artifact
            .get("spec")
            .and_then(Json::as_str)
            .is_some_and(|s| s.contains("paper-default")));
    }
}
