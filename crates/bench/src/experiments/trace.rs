//! Trace-driven experiments: rule-maintenance strategies replayed over
//! synthesized query–reply pair streams (E1–E6, E9, E12, E14).
//!
//! Each experiment is a thin wrapper over its checked-in sweep plan
//! (`plans/eN.toml`): the wrapper rescales the plan to `(scale, seed)`,
//! expands it, executes the jobs, and renders the historical report
//! rows. Scale-dependent spec strings (E6/E14's half-life and epsilon)
//! are overridden through the plan API, never by editing the file.

use super::{
    artifacts_json, by_params, chart_opts, fmt3, plan_at, run_plan, ExperimentReport, Scale,
};
use arq::core::sweep::Value;
use arq::core::EvalRun;
use arq::simkern::chart::{render, ChartOptions};
use arq::simkern::{Json, TimeSeries, ToJson};

/// E1 — Static Ruleset decay (§V-A).
pub fn e1_static(scale: Scale, seed: u64) -> ExperimentReport {
    let plan = plan_at(include_str!("../../../../plans/e1.toml"), "e1", scale, seed);
    let (_, artifacts) = run_plan(&plan);
    let run = artifacts[0].eval_run().expect("trace spec");
    let succ_floor = run.success.final_drop_below(0.05);
    let cov_at_30 = run.coverage.ys().get(29).copied().unwrap_or(f64::NAN);
    let chart = render(
        "Static Ruleset: coverage (*) and success (+) over time",
        &[&run.coverage, &run.success],
        &chart_opts(),
    );
    ExperimentReport {
        id: "E1".into(),
        title: "Static Ruleset over time".into(),
        paper_claim: "avg coverage 0.18, avg success < 0.02 over 365 trials; success ~0 by \
                      trial 16 and never recovers; coverage lingers near 0.4 before decaying"
            .into(),
        rows: vec![
            ("avg coverage (paper 0.18)".into(), fmt3(run.avg_coverage)),
            ("avg success (paper <0.02)".into(), fmt3(run.avg_success)),
            (
                "success permanently <0.05 from trial (paper ~16)".into(),
                succ_floor.map_or("never".into(), |t| (t + 1).to_string()),
            ),
            ("coverage at trial 30 (paper ~0.4)".into(), fmt3(cov_at_30)),
            (
                "rule regenerations (paper 0)".into(),
                run.regenerations.to_string(),
            ),
        ],
        charts: vec![chart],
        series: artifacts_json(&artifacts),
    }
}

/// E2 — Sliding Window over time (Figure 1).
pub fn e2_sliding(scale: Scale, seed: u64) -> ExperimentReport {
    let plan = plan_at(include_str!("../../../../plans/e2.toml"), "e2", scale, seed);
    let (_, artifacts) = run_plan(&plan);
    let run = artifacts[0].eval_run().expect("trace spec");
    let chart = render(
        "Figure 1: Sliding Window coverage (*) and success (+) over time",
        &[&run.coverage, &run.success],
        &chart_opts(),
    );
    ExperimentReport {
        id: "E2".into(),
        title: "Sliding Window over time (Fig. 1)".into(),
        paper_claim: "average coverage over 0.80, average success just under 0.79".into(),
        rows: vec![
            ("avg coverage (paper >0.80)".into(), fmt3(run.avg_coverage)),
            ("avg success (paper ≈0.79)".into(), fmt3(run.avg_success)),
            (
                "regenerations (one per trial)".into(),
                run.regenerations.to_string(),
            ),
        ],
        charts: vec![chart],
        series: artifacts_json(&artifacts),
    }
}

/// E3 — Sliding Window block-size sweep (Figure 2). A single-axis plan
/// whose values keep the historical block order, so the artifact list —
/// and with it `results/e3.json` — keeps its historical bytes.
pub fn e3_block_sizes(scale: Scale, seed: u64) -> ExperimentReport {
    let plan = plan_at(include_str!("../../../../plans/e3.toml"), "e3", scale, seed);
    let (_, artifacts) = run_plan(&plan);
    let sizes = [2_500usize, 5_000, 10_000, 20_000, 50_000];
    let mut rows = Vec::new();
    let mut curves: Vec<TimeSeries> = Vec::new();
    for (bs, artifact) in sizes.iter().zip(&artifacts) {
        let run = artifact.eval_run().expect("trace spec");
        rows.push((
            format!("avg coverage @ block {bs}"),
            format!(
                "{} (success {})",
                fmt3(run.avg_coverage),
                fmt3(run.avg_success)
            ),
        ));
        // Rescale x to pair offsets so the curves share an axis.
        let mut ts = TimeSeries::new(format!("block {bs}"));
        for (x, y) in run.coverage.iter() {
            ts.push(x * *bs as f64, y);
        }
        curves.push(ts);
    }
    let refs: Vec<&TimeSeries> = curves.iter().collect();
    let chart = render(
        "Figure 2: Sliding Window coverage over time, varying block size",
        &refs,
        &ChartOptions {
            y_range: Some((0.0, 1.0)),
            x_label: "pairs processed".into(),
            y_label: "coverage".into(),
            ..Default::default()
        },
    );
    ExperimentReport {
        id: "E3".into(),
        title: "Sliding Window block-size sweep (Fig. 2)".into(),
        paper_claim: "very similar levels of coverage when the block size is altered".into(),
        rows,
        charts: vec![chart],
        series: artifacts_json(&artifacts),
    }
}

/// E3b — support-threshold sweep (§V-B text).
pub fn e3b_thresholds(scale: Scale, seed: u64) -> ExperimentReport {
    let plan = plan_at(
        include_str!("../../../../plans/e3b.toml"),
        "e3b",
        scale,
        seed,
    );
    let (_, artifacts) = run_plan(&plan);
    let thresholds = [2u64, 5, 10, 20, 50];
    let rows = thresholds
        .iter()
        .zip(&artifacts)
        .map(|(t, artifact)| {
            let run = artifact.eval_run().expect("trace spec");
            (
                format!("avg coverage @ threshold {t}"),
                format!(
                    "{} (success {})",
                    fmt3(run.avg_coverage),
                    fmt3(run.avg_success)
                ),
            )
        })
        .collect();
    ExperimentReport {
        id: "E3b".into(),
        title: "Sliding Window support-threshold sweep".into(),
        paper_claim: "similar coverage when the query-reply pair threshold is altered — only a \
                      small number of pairs are needed to forward the majority of queries"
            .into(),
        rows,
        charts: vec![],
        series: artifacts_json(&artifacts),
    }
}

/// E4 — Lazy Sliding Window (Figure 3).
pub fn e4_lazy(scale: Scale, seed: u64) -> ExperimentReport {
    let plan = plan_at(include_str!("../../../../plans/e4.toml"), "e4", scale, seed);
    let (_, artifacts) = run_plan(&plan);
    let run = artifacts[0].eval_run().expect("trace spec");
    let chart = render(
        "Figure 3: Lazy Sliding Window (period 10) coverage (*) and success (+)",
        &[&run.coverage, &run.success],
        &chart_opts(),
    );
    ExperimentReport {
        id: "E4".into(),
        title: "Lazy Sliding Window over time (Fig. 3)".into(),
        paper_claim: "average coverage and success each 0.59 with rule sets used for 10 blocks"
            .into(),
        rows: vec![
            ("avg coverage (paper 0.59)".into(), fmt3(run.avg_coverage)),
            ("avg success (paper 0.59)".into(), fmt3(run.avg_success)),
            (
                "blocks per regeneration (configured 10)".into(),
                run.blocks_per_regen()
                    .map_or("n/a".into(), |b| format!("{b:.1}")),
            ),
        ],
        charts: vec![chart],
        series: artifacts_json(&artifacts),
    }
}

/// E5 — Adaptive Sliding Window (Figure 4), histories 10 and 50 on one
/// plan axis.
pub fn e5_adaptive(scale: Scale, seed: u64) -> ExperimentReport {
    let plan = plan_at(include_str!("../../../../plans/e5.toml"), "e5", scale, seed);
    let (_, artifacts) = run_plan(&plan);
    let run10 = artifacts[0].eval_run().expect("trace spec");
    let run50 = artifacts[1].eval_run().expect("trace spec");
    let chart = render(
        "Figure 4: Adaptive Sliding Window (history 10) coverage (*) and success (+)",
        &[&run10.coverage, &run10.success],
        &chart_opts(),
    );
    let bpr = |r: &EvalRun| {
        r.blocks_per_regen()
            .map_or("n/a".into(), |b| format!("{b:.2}"))
    };
    ExperimentReport {
        id: "E5".into(),
        title: "Adaptive Sliding Window (Fig. 4)".into(),
        paper_claim: "history 10: avg coverage 0.78, success 0.76, regeneration every ~1.7 \
                      blocks; history 50: every ~1.9 blocks, coverage 0.79, success 0.76"
            .into(),
        rows: vec![
            (
                "avg coverage, N=10 (paper 0.78)".into(),
                fmt3(run10.avg_coverage),
            ),
            (
                "avg success, N=10 (paper 0.76)".into(),
                fmt3(run10.avg_success),
            ),
            ("blocks/regen, N=10 (paper 1.7)".into(), bpr(run10)),
            (
                "avg coverage, N=50 (paper 0.79)".into(),
                fmt3(run50.avg_coverage),
            ),
            (
                "avg success, N=50 (paper 0.76)".into(),
                fmt3(run50.avg_success),
            ),
            ("blocks/regen, N=50 (paper 1.9)".into(), bpr(run50)),
        ],
        charts: vec![chart],
        series: artifacts_json(&artifacts),
    }
}

/// E6 — Incremental streaming maintainer (§VI). The half-life tracks
/// the block size (2 blocks), so the strategy string is overridden at
/// non-paper scales.
pub fn e6_incremental(scale: Scale, seed: u64) -> ExperimentReport {
    let mut plan = plan_at(include_str!("../../../../plans/e6.toml"), "e6", scale, seed);
    plan.set_base(
        "strategy",
        format!("incremental(t=10,hl={})", 2 * scale.block_size),
    )
    .expect("strategy is a plan key");
    let (_, artifacts) = run_plan(&plan);
    let run = artifacts[0].eval_run().expect("trace spec");
    let chart = render(
        "Incremental stream maintainer: coverage (*) and success (+)",
        &[&run.coverage, &run.success],
        &chart_opts(),
    );
    ExperimentReport {
        id: "E6".into(),
        title: "Incremental stream rule maintenance".into(),
        paper_claim: "initial simulations consistently show coverage and success above 90%".into(),
        rows: vec![
            ("avg coverage (paper >0.90)".into(), fmt3(run.avg_coverage)),
            ("avg success (paper >0.90)".into(), fmt3(run.avg_success)),
        ],
        charts: vec![chart],
        series: artifacts_json(&artifacts),
    }
}

/// E9 — confidence-based pruning ablation (§VI).
pub fn e9_confidence(scale: Scale, seed: u64) -> ExperimentReport {
    let plan = plan_at(include_str!("../../../../plans/e9.toml"), "e9", scale, seed);
    let (_, artifacts) = run_plan(&plan);
    let confs = [0.0f64, 0.05, 0.10, 0.20, 0.40];
    let avg_rules = |run: &EvalRun| {
        run.rule_counts.iter().sum::<usize>() as f64 / run.rule_counts.len().max(1) as f64
    };
    let rows = confs
        .iter()
        .zip(&artifacts)
        .map(|(c, artifact)| {
            let run = artifact.eval_run().expect("trace spec");
            (
                format!("min confidence {c:.2}"),
                format!(
                    "{:.0} rules avg, coverage {}, success {}",
                    avg_rules(run),
                    fmt3(run.avg_coverage),
                    fmt3(run.avg_success)
                ),
            )
        })
        .collect();
    let series = Json::Arr(
        confs
            .iter()
            .zip(&artifacts)
            .map(|(&c, artifact)| {
                Json::obj([
                    ("confidence", Json::from(c)),
                    (
                        "avg_rules",
                        Json::from(avg_rules(artifact.eval_run().expect("trace spec"))),
                    ),
                    ("artifact", artifact.to_json()),
                ])
            })
            .collect(),
    );
    ExperimentReport {
        id: "E9".into(),
        title: "Confidence-based pruning ablation".into(),
        paper_claim: "confidence-based pruning could reduce the size of rule sets while \
                      retaining high coverage and success (proposed, §VI)"
            .into(),
        rows,
        charts: vec![],
        series,
    }
}

/// E12 — topic-dimension rules (§VI "query strings during rule
/// generation"): `(src, topic)` antecedents vs plain host antecedents,
/// across support thresholds. The grid expands strategy-major (sorted
/// axes), so the historical threshold-major rows are recovered by
/// param lookup.
pub fn e12_topic_rules(scale: Scale, seed: u64) -> ExperimentReport {
    let plan = plan_at(
        include_str!("../../../../plans/e12.toml"),
        "e12",
        scale,
        seed,
    );
    let (jobs, artifacts) = run_plan(&plan);
    let thresholds = [3u64, 10, 30];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for t in thresholds {
        let s = t.to_string();
        let plain_a = by_params(
            &jobs,
            &artifacts,
            &[("strategy", "sliding(s=10)"), ("strategy.s", &s)],
        );
        let topic_a = by_params(
            &jobs,
            &artifacts,
            &[("strategy", "topic-sliding(s=10)"), ("strategy.s", &s)],
        );
        let plain = plain_a.eval_run().expect("trace spec");
        let topic = topic_a.eval_run().expect("trace spec");
        rows.push((
            format!("host rules @ support {t}"),
            format!(
                "coverage {}, success {}",
                fmt3(plain.avg_coverage),
                fmt3(plain.avg_success)
            ),
        ));
        rows.push((
            format!("(host, topic) rules @ support {t}"),
            format!(
                "coverage {}, success {}",
                fmt3(topic.avg_coverage),
                fmt3(topic.avg_success)
            ),
        ));
        series.push(Json::obj([
            ("threshold", Json::from(t)),
            ("plain", plain_a.to_json()),
            ("topic", topic_a.to_json()),
        ]));
    }
    ExperimentReport {
        id: "E12".into(),
        title: "Topic-dimension rule antecedents".into(),
        paper_claim: "adding dimensions such as the query strings during rule generation … \
                      could aid in increasing the quality of the rule sets (proposed, §VI)"
            .into(),
        rows,
        charts: vec![],
        series: Json::Arr(series),
    }
}

/// E14 — streaming maintainers compared: exponential decay vs Lossy
/// Counting (§VI stream mining, reference \[18\]). Both strategy
/// strings depend on the block size, so the axis is overridden at any
/// scale.
pub fn e14_stream_maintainers(scale: Scale, seed: u64) -> ExperimentReport {
    let mut plan = plan_at(
        include_str!("../../../../plans/e14.toml"),
        "e14",
        scale,
        seed,
    );
    plan.set_axis_values(
        "strategy",
        vec![
            vec![Value::from(format!(
                "incremental(t=10,hl={})",
                2 * scale.block_size
            ))],
            vec![Value::from(format!(
                "lossy(t=10,eps={})",
                1.0 / (2.0 * scale.block_size as f64)
            ))],
        ],
    )
    .expect("e14 has a strategy axis");
    let (_, artifacts) = run_plan(&plan);
    let decay = artifacts[0].eval_run().expect("trace spec");
    let lossy = artifacts[1].eval_run().expect("trace spec");
    ExperimentReport {
        id: "E14".into(),
        title: "Streaming maintainers: decay vs Lossy Counting".into(),
        paper_claim: "the creation of rule sets from streams has also been investigated in the \
                      data mining community [Babcock et al.] (§VI)"
            .into(),
        rows: vec![
            (
                "exponential decay (half-life 2 blocks)".into(),
                format!(
                    "coverage {}, success {}",
                    fmt3(decay.avg_coverage),
                    fmt3(decay.avg_success)
                ),
            ),
            (
                "lossy counting (eps = 1/2 block)".into(),
                format!(
                    "coverage {}, success {}",
                    fmt3(lossy.avg_coverage),
                    fmt3(lossy.avg_success)
                ),
            ),
        ],
        charts: vec![],
        series: artifacts_json(&artifacts),
    }
}
