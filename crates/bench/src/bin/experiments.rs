//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p arq-bench --bin experiments -- [OPTIONS]
//!
//! OPTIONS:
//!   --quick            CI-sized runs (61 blocks instead of 366)
//!   --exp e1,e2,...    run only the named experiments
//!   --seed N           master seed (default 20060814)
//!   --out PATH         write the Markdown report here
//!                      (default: EXPERIMENTS.md in the workspace root)
//!   --json DIR         write raw series JSON here (default: results/)
//! ```

use arq_bench::experiments::{run_all, Scale};
use arq_bench::report::{render_markdown, save_json};
use std::path::PathBuf;

struct Args {
    quick: bool,
    only: Option<Vec<String>>,
    seed: u64,
    out: PathBuf,
    json_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        only: None,
        seed: 20_060_814, // ICPP 2006 venue date
        out: PathBuf::from("EXPERIMENTS.md"),
        json_dir: PathBuf::from("results"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--exp" => {
                let v = it.next().expect("--exp needs a value");
                args.only = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a value")),
            "--json" => args.json_dir = PathBuf::from(it.next().expect("--json needs a value")),
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let scale = if args.quick {
        Scale::quick()
    } else {
        Scale::full()
    };
    eprintln!(
        "running experiments at {} scale (seed {}) …",
        if args.quick { "quick" } else { "full" },
        args.seed
    );
    let t0 = std::time::Instant::now();
    let reports = run_all(scale, args.seed, args.only.as_deref());
    eprintln!(
        "{} experiments finished in {:.1?}",
        reports.len(),
        t0.elapsed()
    );

    let header = format!(
        "# EXPERIMENTS — paper vs. measured\n\n\
         Reproduction of every table and figure in *Adaptively Routing P2P Queries\n\
         Using Association Analysis* (Connelly et al., ICPP 2006). The paper's trace\n\
         is replaced by the calibrated synthetic generator described in `DESIGN.md`\n\
         §5, so *shapes and orderings* are the reproduction target, not absolute\n\
         values. Each experiment is a thin wrapper over a checked-in sweep plan\n\
         (see `DESIGN.md` §13); the plan link under each heading reruns that\n\
         experiment standalone via `arq sweep run`. Regenerate everything with:\n\n\
         ```\ncargo run --release -p arq-bench --bin experiments{}\n```\n\n\
         Scale: {} blocks × {} pairs, live sims {} nodes / {} queries. Seed: {}.\n",
        if args.quick { " -- --quick" } else { "" },
        scale.blocks,
        scale.block_size,
        scale.live_nodes,
        scale.live_queries,
        args.seed,
    );
    let md = render_markdown(&reports, &header);
    arq::simkern::write_atomic_str(&args.out, &md).expect("writing the Markdown report");
    for r in &reports {
        save_json(&args.json_dir, r).expect("writing JSON series");
    }
    println!("{md}");
    eprintln!(
        "wrote {} and {} JSON file(s) under {}",
        args.out.display(),
        reports.len(),
        args.json_dir.display()
    );
}
