//! End-to-end golden test for the experiment harness: regenerates E3
//! (the Fig. 2 block-size sweep) at a pinned scale/seed, persists it the
//! way `experiments --out` does, and asserts the emitted bytes digest to
//! a checked-in constant — the whole pipeline (synthesis → mining →
//! evaluation → artifact JSON → `save_json`) is one deterministic
//! function of `(scale, seed)`, at any worker count, with or without an
//! ambient obs layer attached to the run specs.

use arq::simkern::rng::fnv1a;
use arq_bench::experiments::{e3_block_sizes, Scale};
use arq_bench::report::save_json;

/// FNV-1a digest of `results/e3.json` at the scale/seed below. If an
/// intentional change moves it (new artifact fields, measurement fixes),
/// update the constant with the value printed by the failure message —
/// after confirming the byte diff is the one you meant to make.
const E3_GOLDEN_DIGEST: u64 = 0xfe74_c622_fee9_f2cc;

fn golden_scale() -> Scale {
    // 26 × 4 000 = 104 000 pairs: two complete blocks even at E3's
    // largest block size (50 000), small enough for a debug-mode test.
    Scale {
        blocks: 26,
        block_size: 4_000,
        live_nodes: 0,
        live_queries: 0,
    }
}

fn regenerate() -> Vec<u8> {
    let report = e3_block_sizes(golden_scale(), 20_060_814);
    let dir = std::env::temp_dir().join(format!("arq-golden-e3-{}", std::process::id()));
    save_json(&dir, &report).expect("write results JSON");
    let bytes = std::fs::read(dir.join("e3.json")).expect("read back results JSON");
    std::fs::remove_dir_all(&dir).ok();
    bytes
}

// One test on purpose: it mutates ARQ_THREADS/ARQ_OBS, and splitting it
// would race the env against parallel test threads in this binary.
#[test]
fn e3_results_json_is_byte_stable() {
    // The harness regenerates the *un-instrumented* results documents;
    // clear any ambient obs attachment (the CI obs job sets ARQ_OBS=1).
    std::env::remove_var("ARQ_OBS");

    std::env::set_var("ARQ_THREADS", "1");
    let serial = regenerate();
    std::env::set_var("ARQ_THREADS", "4");
    let parallel = regenerate();
    assert_eq!(
        serial, parallel,
        "results JSON must be byte-identical at any worker count"
    );

    // E3 submits 5 specs, so 20 threads splits into 5 outer workers × 4
    // threads of intra-run pipelined block mining per spec — the sharded
    // miner and the speculative premine path must not move a byte either.
    std::env::set_var("ARQ_THREADS", "20");
    let pipelined = regenerate();
    std::env::remove_var("ARQ_THREADS");
    assert_eq!(
        serial, pipelined,
        "results JSON must be byte-identical with intra-run parallelism"
    );

    let digest = fnv1a(&serial);
    assert_eq!(
        digest, E3_GOLDEN_DIGEST,
        "results/e3.json digest moved: measured {digest:#018x}, expected \
         {E3_GOLDEN_DIGEST:#018x}. If the byte change is intentional, update \
         E3_GOLDEN_DIGEST to the measured value."
    );
}
