//! Parity goldens for the plan-driven experiment path: the checked-in
//! plan files must reproduce what the hand-coded E3 and E16 harnesses
//! produced, artifact for artifact.
//!
//! Each test freezes the legacy construction (the exact spec-building
//! code the experiments used before they became plan wrappers), executes
//! it, then drives the corresponding `plans/eN.toml` through the full
//! `run_sweep` path and asserts every `SweepReport` row's spec string
//! and content digest against the legacy artifacts. The content digest
//! ignores the artifact's positional `index`, so the comparison is
//! independent of the grid's sorted-axis job order.

use arq::core::engine::{self, RunSpec, TraceSource};
use arq::core::sweep::{self, artifact_content_digest, SweepPlan};
use arq::gnutella::sim::SimConfig;
use arq::simkern::Json;
use arq::trace::{SynthConfig, SynthTrace};
use std::collections::HashMap;
use std::sync::Arc;

/// Runs the scaled plan through the journaled sweep runner and returns
/// the report rows as `(spec string, artifact digest)` pairs in row
/// order.
fn sweep_rows(plan: &SweepPlan, tag: &str) -> Vec<(String, String)> {
    let jobs = sweep::expand(plan).expect("plan expands");
    let dir = std::env::temp_dir().join(format!("arq-parity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let outcome = sweep::run_sweep(plan, &jobs, &dir, false, 0, 4).expect("sweep runs");
    let rows = outcome
        .report
        .get("rows")
        .and_then(Json::as_array)
        .expect("report has rows")
        .iter()
        .map(|row| {
            (
                row.get("spec")
                    .and_then(Json::as_str)
                    .expect("row has spec")
                    .to_string(),
                row.get("artifact_digest")
                    .and_then(Json::as_str)
                    .expect("row has artifact digest")
                    .to_string(),
            )
        })
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    rows
}

/// E3 at the golden scale: 26 × 4 000 = 104 000 pairs gives two complete
/// blocks even at the largest block size, small enough for a debug test.
#[test]
fn e3_plan_reproduces_the_handcoded_sweep() {
    let (pairs, seed) = (104_000usize, 20_060_814u64);

    // Frozen legacy construction: one shared trace, five block sizes.
    let trace = TraceSource::Shared {
        label: "paper-default".into(),
        seed,
        pairs: Arc::new(SynthTrace::new(SynthConfig::paper_default(pairs, seed)).pairs()),
    };
    let sizes = [2_500usize, 5_000, 10_000, 20_000, 50_000];
    let legacy_specs: Vec<RunSpec> = sizes
        .iter()
        .map(|&bs| RunSpec::TraceEval {
            trace: trace.clone(),
            strategy: "sliding(s=10)".into(),
            block_size: bs,
            obs: None,
        })
        .collect();
    let legacy = engine::execute(&legacy_specs).expect("legacy specs run");

    let mut plan = SweepPlan::load("../../plans/e3.toml").expect("checked-in plan loads");
    plan.seed = seed;
    plan.set_base("seed", seed).unwrap();
    plan.set_base("pairs", pairs).unwrap();
    plan.set_base("block", 4_000usize).unwrap();
    let rows = sweep_rows(&plan, "e3");

    // E3 is a single-axis plan in legacy value order, so the rows line
    // up positionally — spec strings and content digests both.
    assert_eq!(rows.len(), legacy.len());
    for (row, artifact) in rows.iter().zip(&legacy) {
        assert_eq!(row.0, artifact.spec, "plan job diverged from legacy spec");
        assert_eq!(
            row.1,
            format!("{:016x}", artifact_content_digest(artifact)),
            "artifact content diverged for {}",
            artifact.spec
        );
    }
}

/// E16 at smoke scale: 3 policies × (no-fault baseline + 4 loss rates).
/// The grid expands faults-major while the legacy loop was policy-major,
/// so rows are matched by spec string, not position.
#[test]
fn e16_plan_reproduces_the_handcoded_sweep() {
    let (nodes, queries, seed) = (60usize, 150usize, 3u64);

    // Frozen legacy construction, verbatim from the pre-plan harness.
    let mut cfg = SimConfig::default_with(nodes, queries, seed);
    cfg.ttl = 6;
    cfg.catalog.topics = 20;
    cfg.catalog.files_per_topic = 200;
    cfg.churn = Some(arq::overlay::ChurnConfig {
        mean_session: arq::simkern::time::Duration::from_ticks(2_000_000),
        mean_downtime: arq::simkern::time::Duration::from_ticks(600_000),
        pinned: vec![],
    });
    cfg.retry = Some(
        engine::make_retry_policy("retry(deadline=2000,attempts=3,maxttl=8)")
            .expect("retry spec is well-formed"),
    );
    let live = |cfg: &SimConfig, policy: &str| RunSpec::LiveSim {
        cfg: cfg.clone(),
        policy: policy.to_string(),
        graph: None,
        obs: None,
    };
    let mut legacy_specs = Vec::new();
    for policy in ["flood", "assoc", "assoc-adaptive"] {
        legacy_specs.push(live(&cfg, policy));
        for loss in [0.0f64, 0.05, 0.15, 0.30] {
            let mut faulted = cfg.clone();
            faulted.faults = Some(
                engine::make_fault_plan(&format!("faults(loss={loss})"))
                    .expect("fault spec is well-formed"),
            );
            legacy_specs.push(live(&faulted, policy));
        }
    }
    let legacy = engine::execute(&legacy_specs).expect("legacy specs run");
    let legacy_by_spec: HashMap<&str, String> = legacy
        .iter()
        .map(|a| {
            (
                a.spec.as_str(),
                format!("{:016x}", artifact_content_digest(a)),
            )
        })
        .collect();

    let mut plan = SweepPlan::load("../../plans/e16.toml").expect("checked-in plan loads");
    plan.seed = seed;
    plan.set_base("seed", seed).unwrap();
    plan.set_base("nodes", nodes).unwrap();
    plan.set_base("queries", queries).unwrap();
    let rows = sweep_rows(&plan, "e16");

    assert_eq!(rows.len(), legacy_by_spec.len());
    for (spec, digest) in &rows {
        let want = legacy_by_spec
            .get(spec.as_str())
            .unwrap_or_else(|| panic!("plan produced a spec the legacy sweep never ran: {spec}"));
        assert_eq!(digest, want, "artifact content diverged for {spec}");
    }
}
