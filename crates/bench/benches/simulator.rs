//! Network-simulator throughput: full runs per policy and trace
//! generation speed.

// Criterion lives on crates.io; the `criterion` feature is default-off
// so the workspace builds offline. Without it this target is a stub.

#[cfg(feature = "criterion")]
mod real {
    use arq::baselines::KRandomWalk;
    use arq::core::{AssocPolicy, AssocPolicyConfig};
    use arq::gnutella::sim::{Network, SimConfig};
    use arq::gnutella::FloodPolicy;
    use arq::trace::{SynthConfig, SynthTrace};
    use criterion::{criterion_group, criterion_main, Criterion, Throughput};

    fn cfg() -> SimConfig {
        let mut cfg = SimConfig::default_with(200, 400, 5);
        cfg.ttl = 5;
        cfg
    }

    fn bench_simulator(c: &mut Criterion) {
        let mut group = c.benchmark_group("network_run_200n_400q");
        group.sample_size(10);
        group.bench_function("flood", |b| {
            b.iter(|| {
                Network::new(cfg(), FloodPolicy)
                    .run()
                    .metrics
                    .query_messages
            });
        });
        group.bench_function("k_walk4", |b| {
            let mut c = cfg();
            c.ttl = 32;
            b.iter(|| {
                Network::new(c.clone(), KRandomWalk::new(4))
                    .run()
                    .metrics
                    .query_messages
            });
        });
        group.bench_function("assoc", |b| {
            b.iter(|| {
                Network::new(cfg(), AssocPolicy::new(AssocPolicyConfig::default()))
                    .run()
                    .metrics
                    .query_messages
            });
        });
        group.finish();

        let mut group = c.benchmark_group("synth_trace");
        group.throughput(Throughput::Elements(100_000));
        group.sample_size(10);
        group.bench_function("pairs_100k", |b| {
            b.iter(|| {
                SynthTrace::new(SynthConfig::paper_default(100_000, 3))
                    .pairs()
                    .len()
            });
        });
        group.finish();
    }

    criterion_group!(benches, bench_simulator);
    pub fn main() {
        benches();
    }
}

#[cfg(feature = "criterion")]
fn main() {
    real::main();
}

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!(
        "benchmark disabled: rebuild with `--features criterion` \
         (needs network access to fetch the criterion crate)"
    );
}
