//! Overlay substrate costs: topology generation, BFS, churn.

// Criterion lives on crates.io; the `criterion` feature is default-off
// so the workspace builds offline. Without it this target is a stub.

#[cfg(feature = "criterion")]
mod real {
    use arq::overlay::churn::{ChurnConfig, ChurnProcess};
    use arq::overlay::{algo, generate, NodeId};
    use arq::simkern::time::{Duration, SimTime};
    use arq::simkern::Rng64;
    use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

    fn bench_overlay(c: &mut Criterion) {
        let mut group = c.benchmark_group("topology_generation_2k");
        for (name, gen) in [
            (
                "barabasi_albert",
                Box::new(|rng: &mut Rng64| generate::barabasi_albert(2_000, 3, rng))
                    as Box<dyn Fn(&mut Rng64) -> arq::overlay::Graph>,
            ),
            (
                "erdos_renyi",
                Box::new(|rng: &mut Rng64| generate::erdos_renyi(2_000, 0.003, rng)),
            ),
            (
                "watts_strogatz",
                Box::new(|rng: &mut Rng64| generate::watts_strogatz(2_000, 3, 0.1, rng)),
            ),
        ] {
            group.bench_with_input(BenchmarkId::from_parameter(name), &gen, |b, gen| {
                let mut rng = Rng64::seed_from(1);
                b.iter(|| gen(&mut rng).edge_count());
            });
        }
        group.finish();

        let mut rng = Rng64::seed_from(2);
        let g = generate::barabasi_albert(5_000, 3, &mut rng);
        c.bench_function("bfs_5k_nodes", |b| {
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1) % 5_000;
                algo::bfs_distances(&g, NodeId(i))
            });
        });

        c.bench_function("churn_1k_events", |b| {
            b.iter(|| {
                let cfg = ChurnConfig {
                    mean_session: Duration::from_ticks(1_000),
                    mean_downtime: Duration::from_ticks(500),
                    pinned: vec![],
                };
                let mut p = ChurnProcess::new(500, cfg, Rng64::seed_from(3));
                for _ in 0..1_000 {
                    p.next_before(SimTime::MAX);
                }
            });
        });
    }

    criterion_group!(benches, bench_overlay);
    pub fn main() {
        benches();
    }
}

#[cfg(feature = "criterion")]
fn main() {
    real::main();
}

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!(
        "benchmark disabled: rebuild with `--features criterion` \
         (needs network access to fetch the criterion crate)"
    );
}
