//! E8 — rule-set generation cost across block sizes and thresholds.
//!
//! The paper's PHP/MySQL miner needed "no more than a few seconds" per
//! 10k-pair block; this bench records what the in-memory miner needs.

// Criterion lives on crates.io; the `criterion` feature is default-off
// so the workspace builds offline. Without it this target is a stub.

#[cfg(feature = "criterion")]
mod real {
    use arq::assoc::keyed::{mine_keyed, src_topic_key};
    use arq::assoc::{
        mine_pairs, pairs::mine_pairs_with_confidence, DecayedPairCounts, LossyPairCounts,
    };
    use arq::trace::{SynthConfig, SynthTrace};
    use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

    fn bench_rule_generation(c: &mut Criterion) {
        let pairs = SynthTrace::new(SynthConfig::paper_default(100_000, 7)).pairs();
        let mut group = c.benchmark_group("mine_pairs");
        for &size in &[1_000usize, 10_000, 50_000, 100_000] {
            group.throughput(Throughput::Elements(size as u64));
            group.bench_with_input(BenchmarkId::new("support10", size), &size, |b, &size| {
                b.iter(|| mine_pairs(&pairs[..size], 10));
            });
        }
        group.finish();

        let mut group = c.benchmark_group("mine_pairs_thresholds");
        for &t in &[2u64, 10, 50] {
            group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
                b.iter(|| mine_pairs(&pairs[..10_000], t));
            });
        }
        group.finish();

        c.bench_function("mine_pairs_with_confidence_10k", |b| {
            b.iter(|| mine_pairs_with_confidence(&pairs[..10_000], 10, 0.1));
        });

        c.bench_function("mine_keyed_topic_10k", |b| {
            b.iter(|| mine_keyed(&pairs[..10_000], src_topic_key, 10));
        });

        let mut group = c.benchmark_group("stream_counters_10k_observe");
        group.throughput(Throughput::Elements(10_000));
        group.bench_function("decayed", |b| {
            b.iter(|| {
                let mut counts = DecayedPairCounts::new(20_000.0);
                for p in &pairs[..10_000] {
                    counts.observe_pair(p);
                }
                counts.len()
            });
        });
        group.bench_function("lossy", |b| {
            b.iter(|| {
                let mut counts = LossyPairCounts::new(5e-5);
                for p in &pairs[..10_000] {
                    counts.observe_pair(p);
                }
                counts.len()
            });
        });
        group.finish();
    }

    criterion_group!(benches, bench_rule_generation);
    pub fn main() {
        benches();
    }
}

#[cfg(feature = "criterion")]
fn main() {
    real::main();
}

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!(
        "benchmark disabled: rebuild with `--features criterion` \
         (needs network access to fetch the criterion crate)"
    );
}
