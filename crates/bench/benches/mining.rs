//! Apriori vs FP-Growth on synthetic transaction databases.

// Criterion lives on crates.io; the `criterion` feature is default-off
// so the workspace builds offline. Without it this target is a stub.

#[cfg(feature = "criterion")]
mod real {
    use arq::assoc::{apriori::apriori, eclat::eclat, fpgrowth::fpgrowth, ItemId, TransactionDb};
    use arq::simkern::Rng64;
    use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

    fn random_db(items: u64, transactions: usize, len: usize, seed: u64) -> TransactionDb {
        let mut rng = Rng64::seed_from(seed);
        let mut db = TransactionDb::new();
        for _ in 0..transactions {
            let t: Vec<ItemId> = (0..len).map(|_| ItemId(rng.below(items) as u32)).collect();
            db.add(t);
        }
        db
    }

    fn bench_mining(c: &mut Criterion) {
        // Dense: few items, long transactions — FP-Growth's home turf.
        let dense = random_db(24, 400, 8, 1);
        // Sparse: many items, short transactions.
        let sparse = random_db(400, 400, 4, 2);
        let mut group = c.benchmark_group("frequent_itemsets");
        for (name, db, min_count) in [("dense", &dense, 8u64), ("sparse", &sparse, 3u64)] {
            group.bench_with_input(BenchmarkId::new("apriori", name), db, |b, db| {
                b.iter(|| apriori(db, min_count));
            });
            group.bench_with_input(BenchmarkId::new("fpgrowth", name), db, |b, db| {
                b.iter(|| fpgrowth(db, min_count));
            });
            group.bench_with_input(BenchmarkId::new("eclat", name), db, |b, db| {
                b.iter(|| eclat(db, min_count));
            });
        }
        group.finish();
    }

    criterion_group!(benches, bench_mining);
    pub fn main() {
        benches();
    }
}

#[cfg(feature = "criterion")]
fn main() {
    real::main();
}

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!(
        "benchmark disabled: rebuild with `--features criterion` \
         (needs network access to fetch the criterion crate)"
    );
}
