//! Apriori vs FP-Growth on synthetic transaction databases, plus the
//! block-mining hot path (reference `mine_pairs` vs the sharded
//! `PairMiner`) that `arq bench` baselines in `BENCH_5.json`.

// Criterion lives on crates.io; the `criterion` feature is default-off
// so the workspace builds offline. Without it this target is a stub.

#[cfg(feature = "criterion")]
mod real {
    use arq::assoc::{apriori::apriori, eclat::eclat, fpgrowth::fpgrowth, ItemId, TransactionDb};
    use arq::assoc::{mine_pairs, PairMiner};
    use arq::simkern::Rng64;
    use arq::trace::{SynthConfig, SynthTrace};
    use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

    fn random_db(items: u64, transactions: usize, len: usize, seed: u64) -> TransactionDb {
        let mut rng = Rng64::seed_from(seed);
        let mut db = TransactionDb::new();
        for _ in 0..transactions {
            let t: Vec<ItemId> = (0..len).map(|_| ItemId(rng.below(items) as u32)).collect();
            db.add(t);
        }
        db
    }

    fn bench_mining(c: &mut Criterion) {
        // Dense: few items, long transactions — FP-Growth's home turf.
        let dense = random_db(24, 400, 8, 1);
        // Sparse: many items, short transactions.
        let sparse = random_db(400, 400, 4, 2);
        let mut group = c.benchmark_group("frequent_itemsets");
        for (name, db, min_count) in [("dense", &dense, 8u64), ("sparse", &sparse, 3u64)] {
            group.bench_with_input(BenchmarkId::new("apriori", name), db, |b, db| {
                b.iter(|| apriori(db, min_count));
            });
            group.bench_with_input(BenchmarkId::new("fpgrowth", name), db, |b, db| {
                b.iter(|| fpgrowth(db, min_count));
            });
            group.bench_with_input(BenchmarkId::new("eclat", name), db, |b, db| {
                b.iter(|| eclat(db, min_count));
            });
        }
        group.finish();
    }

    fn bench_block_mining(c: &mut Criterion) {
        // One E3-sized block of the calibrated drifting trace — the unit
        // of work every sliding-window strategy repeats per trial.
        let block = SynthTrace::new(SynthConfig::paper_default(50_000, 20_060_814)).pairs();
        let mut group = c.benchmark_group("block_mining");
        group.bench_function("mine_pairs", |b| {
            b.iter(|| mine_pairs(&block, 10).rule_count());
        });
        for shards in [1usize, 2, 4, 8] {
            let mut miner = PairMiner::sharded(shards);
            group.bench_with_input(BenchmarkId::new("pair_miner", shards), &shards, |b, _| {
                b.iter(|| miner.mine(&block, 10).rule_count());
            });
        }
        group.finish();
    }

    criterion_group!(benches, bench_mining, bench_block_mining);
    pub fn main() {
        benches();
    }
}

#[cfg(feature = "criterion")]
fn main() {
    real::main();
}

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!(
        "benchmark disabled: rebuild with `--features criterion` \
         (needs network access to fetch the criterion crate)"
    );
}
