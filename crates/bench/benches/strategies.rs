//! Strategy evaluation throughput: the cost of RULESET-TEST and of each
//! maintenance scheme over a calibrated trace.

// Criterion lives on crates.io; the `criterion` feature is default-off
// so the workspace builds offline. Without it this target is a stub.

#[cfg(feature = "criterion")]
mod real {
    use arq::assoc::{mine_pairs, ruleset_test, DecayedPairCounts};
    use arq::core::strategy::Strategy;
    use arq::core::{
        evaluate, AdaptiveSlidingWindow, IncrementalStream, LazySlidingWindow, SlidingWindow,
        StaticRuleset,
    };
    use arq::trace::{SynthConfig, SynthTrace};
    use criterion::{criterion_group, criterion_main, Criterion, Throughput};

    fn bench_strategies(c: &mut Criterion) {
        let block_size = 5_000usize;
        let pairs = SynthTrace::new(SynthConfig::paper_default(block_size * 21, 11)).pairs();

        c.bench_function("ruleset_test_5k", |b| {
            let rules = mine_pairs(&pairs[..block_size], 10);
            b.iter(|| ruleset_test(&rules, &pairs[block_size..2 * block_size]));
        });

        c.bench_function("decayed_counts_observe", |b| {
            let mut counts = DecayedPairCounts::new(10_000.0);
            let mut i = 0usize;
            b.iter(|| {
                counts.observe_pair(&pairs[i % pairs.len()]);
                i += 1;
            });
        });

        let mut group = c.benchmark_group("evaluate_20_blocks");
        group.throughput(Throughput::Elements(pairs.len() as u64));
        group.sample_size(10);
        let mut run = |name: &str, mk: &mut dyn FnMut() -> Box<dyn Strategy>| {
            group.bench_function(name, |b| {
                b.iter(|| {
                    let mut s = mk();
                    evaluate(s.as_mut(), &pairs, block_size)
                });
            });
        };
        run("static", &mut || Box::new(StaticRuleset::new(10)));
        run("sliding", &mut || Box::new(SlidingWindow::new(10)));
        run("lazy10", &mut || Box::new(LazySlidingWindow::new(10, 10)));
        run("adaptive10", &mut || {
            Box::new(AdaptiveSlidingWindow::new(10, 10, 0.7))
        });
        run("incremental", &mut || {
            Box::new(IncrementalStream::new(10.0, 10_000.0))
        });
        group.finish();
    }

    criterion_group!(benches, bench_strategies);
    pub fn main() {
        benches();
    }
}

#[cfg(feature = "criterion")]
fn main() {
    real::main();
}

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!(
        "benchmark disabled: rebuild with `--features criterion` \
         (needs network access to fetch the criterion crate)"
    );
}
